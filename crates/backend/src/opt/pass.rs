//! The shared dataflow engine behind [`super::optimize`]: hash-consed
//! value numbering (forward), two-bit per-plane liveness (backward), and a
//! copy-coalescing peephole, iterated to a fixpoint.
//!
//! The value lattice models every plane's contents as a node in a
//! hash-consed boolean DAG over the recipe's *entry* state: `Input(plane)`
//! leaves, `And`/`Xor`/`Maj` interior nodes (enough to express all nine
//! micro-op kinds), a `True` constant, and `Merge(old, new)` for masked
//! stores (the post-state of a write to a [`Plane::Reg`]/[`Plane::Cond`]
//! destination, which blends old and new per the wave-constant lane mask).
//! Negation is a bit on the edge (`ValRef::neg`), so double negation —
//! `Nor(x, x)` feeding `Nor(y, y)` — cancels structurally, and constructor
//! normalization folds the absorbing/idempotent identities of each logic
//! family (`x NOR x = !x`, `Maj(x, x, y) = x`, `Maj(x, !x, y) = y`,
//! `Xor(x, x) = 0`, …). Two planes holding the same node are
//! interchangeable at that program point; `Merge` nodes compare equal only
//! when both old and new match, which is exactly the condition under which
//! two masked writes commute with any mask value.
//!
//! Liveness tracks `(enabled, disabled)` lane-set bits per plane: a masked
//! store kills only the enabled half (disabled lanes flow through the
//! merge), an unmasked store kills both, and any read revives both.
//! Architectural planes (`Reg`/`Cond`/`Mask`) are live at recipe exit;
//! scratch planes are not.

use super::{OptConfig, OptRule, OptStats};
use crate::bitplane::{BitPlaneVrf, Plane, SCRATCH_PLANES};
use crate::logic::LogicFamily;
use crate::microop::{MicroOp, MicroOpKind};
use crate::recipe::Recipe;
use std::collections::HashMap;

/// Fixpoint cap. Each round strictly removes ops or reaches quiescence;
/// synthesized templates converge in two or three rounds.
const MAX_ROUNDS: usize = 4;

const TRUE: ValRef = ValRef { idx: 0, neg: false };
const FALSE: ValRef = ValRef { idx: 0, neg: true };

fn latch_plane() -> Plane {
    Plane::Scratch(SCRATCH_PLANES as u16 - 1)
}

/// A reference to a hash-consed value node, with a complement bit on the
/// edge so negation is free and double negation cancels structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ValRef {
    idx: u32,
    neg: bool,
}

impl ValRef {
    fn not(self) -> ValRef {
        ValRef { idx: self.idx, neg: !self.neg }
    }

    fn is_const(self) -> bool {
        self.idx == 0
    }

    fn key(self) -> (u32, bool) {
        (self.idx, self.neg)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    True,
    Input(Plane),
    And(ValRef, ValRef),
    /// Operands stored positive; polarity lifted to the referencing edge.
    Xor(ValRef, ValRef),
    Maj(ValRef, ValRef, ValRef),
    /// Masked-store post-state: `(old, new)` blended by the lane mask.
    Merge(ValRef, ValRef),
}

/// The forward value-numbering state: plane → value, value → holder
/// planes, and the hash-consed node table.
struct Values {
    nodes: Vec<Node>,
    index: HashMap<Node, u32>,
    val: HashMap<Plane, ValRef>,
    holders: HashMap<ValRef, Vec<Plane>>,
}

impl Values {
    fn new() -> Values {
        let mut index = HashMap::new();
        index.insert(Node::True, 0);
        Values { nodes: vec![Node::True], index, val: HashMap::new(), holders: HashMap::new() }
    }

    fn node(&self, v: ValRef) -> Node {
        self.nodes[v.idx as usize]
    }

    fn intern(&mut self, node: Node) -> ValRef {
        let idx = if let Some(&i) = self.index.get(&node) {
            i
        } else {
            let i = self.nodes.len() as u32;
            self.nodes.push(node);
            self.index.insert(node, i);
            i
        };
        ValRef { idx, neg: false }
    }

    fn cref(value: bool) -> ValRef {
        if value {
            TRUE
        } else {
            FALSE
        }
    }

    /// Current value of `p`, creating an `Input` leaf on first read of a
    /// plane that has not been written yet.
    fn read(&mut self, p: Plane) -> ValRef {
        if let Plane::Const(b) = p {
            return Values::cref(b);
        }
        if let Some(&v) = self.val.get(&p) {
            return v;
        }
        let v = self.intern(Node::Input(p));
        self.val.insert(p, v);
        self.holders.entry(v).or_default().push(p);
        v
    }

    fn write(&mut self, p: Plane, v: ValRef) {
        if let Some(&old) = self.val.get(&p) {
            if let Some(list) = self.holders.get_mut(&old) {
                list.retain(|&q| q != p);
            }
        }
        self.val.insert(p, v);
        self.holders.entry(v).or_default().push(p);
    }

    /// The canonical (earliest-established, still-valid) plane holding `v`.
    fn holder(&self, v: ValRef) -> Option<Plane> {
        self.holders.get(&v).and_then(|l| l.first()).copied()
    }

    fn mk_and(&mut self, x: ValRef, y: ValRef) -> ValRef {
        if x == TRUE {
            return y;
        }
        if y == TRUE {
            return x;
        }
        if x == FALSE || y == FALSE {
            return FALSE;
        }
        if x == y {
            return x;
        }
        if x == y.not() {
            return FALSE;
        }
        let (x, y) = if x.key() <= y.key() { (x, y) } else { (y, x) };
        self.intern(Node::And(x, y))
    }

    fn mk_or(&mut self, x: ValRef, y: ValRef) -> ValRef {
        self.mk_and(x.not(), y.not()).not()
    }

    fn mk_nor(&mut self, x: ValRef, y: ValRef) -> ValRef {
        self.mk_and(x.not(), y.not())
    }

    fn mk_xor(&mut self, x: ValRef, y: ValRef) -> ValRef {
        if x == y {
            return FALSE;
        }
        if x == y.not() {
            return TRUE;
        }
        if x.is_const() {
            return if x == FALSE { y } else { y.not() };
        }
        if y.is_const() {
            return if y == FALSE { x } else { x.not() };
        }
        let neg = x.neg ^ y.neg;
        let (px, py) = (ValRef { neg: false, ..x }, ValRef { neg: false, ..y });
        let (px, py) = if px.key() <= py.key() { (px, py) } else { (py, px) };
        let r = self.intern(Node::Xor(px, py));
        if neg {
            r.not()
        } else {
            r
        }
    }

    fn mk_maj(&mut self, a: ValRef, b: ValRef, c: ValRef) -> ValRef {
        if a == b || a == c {
            return a;
        }
        if b == c {
            return b;
        }
        if a == b.not() {
            return c;
        }
        if a == c.not() {
            return b;
        }
        if b == c.not() {
            return a;
        }
        if a.is_const() {
            return if a == TRUE { self.mk_or(b, c) } else { self.mk_and(b, c) };
        }
        if b.is_const() {
            return if b == TRUE { self.mk_or(a, c) } else { self.mk_and(a, c) };
        }
        if c.is_const() {
            return if c == TRUE { self.mk_or(a, b) } else { self.mk_and(a, b) };
        }
        // Majority is self-dual: Maj(!a, !b, !c) = !Maj(a, b, c). Normalize
        // the all-negated form so both polarities hash to one node.
        let mut v = [a, b, c];
        let neg = v.iter().all(|r| r.neg);
        if neg {
            v = [a.not(), b.not(), c.not()];
        }
        v.sort_by_key(|r| r.key());
        let r = self.intern(Node::Maj(v[0], v[1], v[2]));
        if neg {
            r.not()
        } else {
            r
        }
    }

    /// Exact value of a 3-input LUT query: the OR of the AND minterms for
    /// every set table bit, mirroring [`crate::microop::lut3_word`]. The
    /// constructor normalizations then fold degenerate tables (constants,
    /// pass-throughs, single-input negations) for free.
    fn mk_lut(&mut self, table: u8, a: ValRef, b: ValRef, c: ValRef) -> ValRef {
        let mut v = FALSE;
        for idx in 0..8u8 {
            if table >> idx & 1 == 1 {
                let xa = if idx & 1 != 0 { a } else { a.not() };
                let xb = if idx & 2 != 0 { b } else { b.not() };
                let xc = if idx & 4 != 0 { c } else { c.not() };
                let t = self.mk_and(xa, xb);
                let t = self.mk_and(t, xc);
                v = self.mk_or(v, t);
            }
        }
        v
    }

    fn mk_merge(&mut self, old: ValRef, new: ValRef) -> ValRef {
        if old == new {
            return old;
        }
        // Re-merging the same enabled-lane value is idempotent:
        // merge(merge(o, n), n) = merge(o, n) for any (wave-constant) mask.
        if !old.neg {
            if let Node::Merge(_, prev_new) = self.node(old) {
                if prev_new == new {
                    return old;
                }
            }
        }
        self.intern(Node::Merge(old, new))
    }

    /// Rewrites a read operand in place: constant values are rewired to the
    /// preset constant planes; otherwise the operand is redirected to the
    /// canonical holder of its value (copy propagation when the value is a
    /// plain plane copy, chain collapsing when it is a derived node).
    fn rewrite_operand(&mut self, p: &mut Plane, gate: &RuleGate, stats: &mut OptStats) -> bool {
        let v = self.read(*p);
        if v.is_const() {
            let c = Plane::Const(v == TRUE);
            if *p != c && gate.on(OptRule::ConstFold) {
                stats.rule_mut(OptRule::ConstFold).fires += 1;
                *p = c;
                return true;
            }
            return false;
        }
        let Some(q) = self.holder(v) else { return false };
        if q == *p {
            return false;
        }
        let rule = match self.node(v) {
            Node::Input(_) | Node::Merge(..) => OptRule::CopyProp,
            _ => OptRule::ChainCollapse,
        };
        if !gate.on(rule) {
            return false;
        }
        stats.rule_mut(rule).fires += 1;
        *p = q;
        true
    }
}

struct RuleGate {
    family: LogicFamily,
    config: OptConfig,
}

impl RuleGate {
    fn on(&self, rule: OptRule) -> bool {
        self.config.rule_enabled(rule) && rule.sound_for(self.family)
    }
}

/// True when issuing `new` instead of `old` is legal on this substrate and
/// no worse on both cost axes with a strict improvement on at least one.
fn improves(
    cost: &dyn Fn(MicroOpKind) -> Option<(u64, f64)>,
    family: LogicFamily,
    new: MicroOpKind,
    old: MicroOpKind,
) -> bool {
    if !family.supports(new) {
        return false;
    }
    let (Some((nc, ne)), Some((oc, oe))) = (cost(new), cost(old)) else {
        return false;
    };
    nc <= oc && ne <= oe && (nc < oc || ne < oe)
}

struct Slot {
    op: MicroOp,
    live: bool,
    /// Set by the forward pass when the op's value already lived in another
    /// plane before the write — a recomputation bypassed by operand
    /// redirection, attributed to chain collapsing once liveness deletes it.
    dup: bool,
}

pub(super) fn run(
    recipe: &Recipe,
    family: LogicFamily,
    config: OptConfig,
    cost: &dyn Fn(MicroOpKind) -> Option<(u64, f64)>,
) -> (Recipe, OptStats) {
    let mut stats = OptStats::default();
    if !config.enabled {
        return (recipe.clone(), stats);
    }
    let mut ops: Vec<MicroOp> = recipe.ops().to_vec();
    if config.canary {
        if let Some(MicroOp::Set { value, .. }) =
            ops.iter_mut().find(|op| matches!(op, MicroOp::Set { .. }))
        {
            *value = !*value;
        }
    }
    // Word-serial ops execute whole instructions against architectural
    // registers; their dataflow is not expressible in the per-plane value
    // lattice, so recipes containing them pass through unmodified.
    if ops.iter().any(|op| matches!(op, MicroOp::Word { .. })) {
        return (recipe.with_optimized_ops(ops, 0), stats);
    }
    // The merge model assumes the mask plane is wave-constant, and writes
    // to constant planes trap at execution time; synthesized recipes never
    // do either, but `Recipe::from_ops` sequences may — pass those through.
    if ops.iter().any(|op| op.writes().iter().any(|w| matches!(w, Plane::Mask | Plane::Const(_)))) {
        return (recipe.with_optimized_ops(ops, 0), stats);
    }
    let gate = RuleGate { family, config };
    let mut slots: Vec<Slot> =
        ops.into_iter().map(|op| Slot { op, live: true, dup: false }).collect();
    for _ in 0..MAX_ROUNDS {
        for s in &mut slots {
            s.dup = false;
        }
        let mut changed = forward(&mut slots, &gate, cost, &mut stats);
        changed |= liveness(&mut slots, &gate, &mut stats);
        changed |= coalesce(&mut slots, &gate, &mut stats);
        slots.retain(|s| s.live);
        if !changed {
            break;
        }
    }
    let optimized: Vec<MicroOp> = slots.into_iter().map(|s| s.op).collect();
    let saved = (recipe.len() - optimized.len()) as u32;
    (recipe.with_optimized_ops(optimized, saved), stats)
}

/// Forward value-numbering rewrite pass over the live ops.
fn forward(
    slots: &mut [Slot],
    gate: &RuleGate,
    cost: &dyn Fn(MicroOpKind) -> Option<(u64, f64)>,
    stats: &mut OptStats,
) -> bool {
    let mut vals = Values::new();
    let mut changed = false;
    for slot in slots.iter_mut() {
        if !slot.live {
            continue;
        }
        match slot.op {
            MicroOp::Nor { mut a, mut b, out } => {
                changed |= vals.rewrite_operand(&mut a, gate, stats);
                changed |= vals.rewrite_operand(&mut b, gate, stats);
                slot.op = MicroOp::Nor { a, b, out };
                let va = vals.read(a);
                let vb = vals.read(b);
                let v = vals.mk_nor(va, vb);
                changed |= finish_single(slot, out, v, &mut vals, gate, cost, stats);
            }
            MicroOp::And { mut a, mut b, out } => {
                changed |= vals.rewrite_operand(&mut a, gate, stats);
                changed |= vals.rewrite_operand(&mut b, gate, stats);
                slot.op = MicroOp::And { a, b, out };
                let va = vals.read(a);
                let vb = vals.read(b);
                let v = vals.mk_and(va, vb);
                changed |= finish_single(slot, out, v, &mut vals, gate, cost, stats);
            }
            MicroOp::Or { mut a, mut b, out } => {
                changed |= vals.rewrite_operand(&mut a, gate, stats);
                changed |= vals.rewrite_operand(&mut b, gate, stats);
                slot.op = MicroOp::Or { a, b, out };
                let va = vals.read(a);
                let vb = vals.read(b);
                let v = vals.mk_or(va, vb);
                changed |= finish_single(slot, out, v, &mut vals, gate, cost, stats);
            }
            MicroOp::Xor { mut a, mut b, out } => {
                changed |= vals.rewrite_operand(&mut a, gate, stats);
                changed |= vals.rewrite_operand(&mut b, gate, stats);
                slot.op = MicroOp::Xor { a, b, out };
                let va = vals.read(a);
                let vb = vals.read(b);
                let v = vals.mk_xor(va, vb);
                changed |= finish_single(slot, out, v, &mut vals, gate, cost, stats);
            }
            MicroOp::Tra { mut a, mut b, mut c, out } => {
                changed |= vals.rewrite_operand(&mut a, gate, stats);
                changed |= vals.rewrite_operand(&mut b, gate, stats);
                changed |= vals.rewrite_operand(&mut c, gate, stats);
                slot.op = MicroOp::Tra { a, b, c, out };
                let va = vals.read(a);
                let vb = vals.read(b);
                let vc = vals.read(c);
                let v = vals.mk_maj(va, vb, vc);
                changed |= finish_single(slot, out, v, &mut vals, gate, cost, stats);
            }
            MicroOp::Not { mut a, out } => {
                changed |= vals.rewrite_operand(&mut a, gate, stats);
                slot.op = MicroOp::Not { a, out };
                let v = vals.read(a).not();
                changed |= finish_single(slot, out, v, &mut vals, gate, cost, stats);
            }
            MicroOp::Copy { mut a, out } => {
                changed |= vals.rewrite_operand(&mut a, gate, stats);
                slot.op = MicroOp::Copy { a, out };
                let v = vals.read(a);
                changed |= finish_single(slot, out, v, &mut vals, gate, cost, stats);
            }
            MicroOp::Set { out, value } => {
                let v = Values::cref(value);
                changed |= finish_single(slot, out, v, &mut vals, gate, cost, stats);
            }
            MicroOp::Lut { mut a, mut b, mut c, out, table } => {
                changed |= vals.rewrite_operand(&mut a, gate, stats);
                changed |= vals.rewrite_operand(&mut b, gate, stats);
                changed |= vals.rewrite_operand(&mut c, gate, stats);
                slot.op = MicroOp::Lut { a, b, c, out, table };
                let va = vals.read(a);
                let vb = vals.read(b);
                let vc = vals.read(c);
                let v = vals.mk_lut(table, va, vb, vc);
                changed |= finish_single(slot, out, v, &mut vals, gate, cost, stats);
            }
            MicroOp::Word { .. } => {
                unreachable!("word-serial recipes bypass the optimizer (run() passes them through)")
            }
            MicroOp::FullAdd { mut a, mut b, carry, sum } => {
                // The carry operand is read *and* written — never redirect
                // it: the carry-out must land back in the same plane.
                changed |= vals.rewrite_operand(&mut a, gate, stats);
                changed |= vals.rewrite_operand(&mut b, gate, stats);
                slot.op = MicroOp::FullAdd { a, b, carry, sum };
                let va = vals.read(a);
                let vb = vals.read(b);
                let vc = vals.read(carry);
                let vx = vals.mk_xor(va, vb);
                let vsum = vals.mk_xor(vx, vc);
                let vcout = vals.mk_maj(va, vb, vc);
                // Model apply()'s exact write order: latch, carry, sum.
                vals.write(latch_plane(), vsum);
                let ceff = if BitPlaneVrf::is_masked_target(carry) {
                    vals.mk_merge(vc, vcout)
                } else {
                    vcout
                };
                vals.write(carry, ceff);
                let seff = if BitPlaneVrf::is_masked_target(sum) {
                    let old = vals.read(sum);
                    vals.mk_merge(old, vsum)
                } else {
                    vsum
                };
                vals.write(sum, seff);
            }
        }
    }
    changed
}

/// Post-processes a single-destination op once its result value is known:
/// deletes no-op stores, strength-reduces constant results to `Set` and
/// recomputed results to `Copy` (cost-gated), and updates the value state.
fn finish_single(
    slot: &mut Slot,
    out: Plane,
    v: ValRef,
    vals: &mut Values,
    gate: &RuleGate,
    cost: &dyn Fn(MicroOpKind) -> Option<(u64, f64)>,
    stats: &mut OptStats,
) -> bool {
    let mut changed = false;
    let masked = BitPlaneVrf::is_masked_target(out);
    let old = vals.read(out);
    let eff = if masked { vals.mk_merge(old, v) } else { v };
    if eff == old && gate.on(OptRule::MaskStrength) {
        // The store provably leaves the destination unchanged — either the
        // written value equals the current contents, or a masked store
        // re-merges the value a previous masked store already merged.
        let rs = stats.rule_mut(OptRule::MaskStrength);
        rs.fires += 1;
        rs.removed_uops += 1;
        slot.live = false;
        return true;
    }
    let kind = slot.op.kind();
    if v.is_const() {
        // (kind rewrites judge `v`, the enabled-lane value; the store's
        // maskedness is a property of the destination and is preserved.)
        if kind != MicroOpKind::Set
            && gate.on(OptRule::ConstFold)
            && improves(cost, gate.family, MicroOpKind::Set, kind)
        {
            slot.op = MicroOp::Set { out, value: v == TRUE };
            stats.rule_mut(OptRule::ConstFold).fires += 1;
            changed = true;
        }
    } else if gate.on(OptRule::ChainCollapse) {
        if let Some(q) = vals.holder(v) {
            // The value already lives in `q` (q != out, else the no-op
            // branch above would have fired). Mark the recomputation so
            // liveness can attribute its deletion; materialize a Copy only
            // where the substrate prices Copy below the computing kind.
            slot.dup = true;
            if kind != MicroOpKind::Copy
                && q != out
                && improves(cost, gate.family, MicroOpKind::Copy, kind)
            {
                slot.op = MicroOp::Copy { a: q, out };
                stats.rule_mut(OptRule::ChainCollapse).fires += 1;
                changed = true;
            }
        }
    }
    vals.write(out, eff);
    changed
}

/// Backward two-bit liveness (enabled lanes, mask-disabled lanes) and
/// dead-op deletion, with per-rule attribution of each removal.
fn liveness(slots: &mut [Slot], gate: &RuleGate, stats: &mut OptStats) -> bool {
    fn exit_live(p: Plane) -> (bool, bool) {
        match p {
            Plane::Scratch(_) => (false, false),
            _ => (true, true),
        }
    }
    let mut live: HashMap<Plane, (bool, bool)> = HashMap::new();
    let mut changed = false;
    for slot in slots.iter_mut().rev() {
        if !slot.live {
            continue;
        }
        let writes = slot.op.writes();
        let mut needed = false;
        let mut masked_d_live = false;
        for &w in &writes {
            let (e, d) = live.get(&w).copied().unwrap_or_else(|| exit_live(w));
            if BitPlaneVrf::is_masked_target(w) {
                // A masked store only defines the enabled lanes; if only
                // the disabled lanes are live, deleting it is exact (they
                // hold the old contents either way).
                if e {
                    needed = true;
                } else if d {
                    masked_d_live = true;
                }
            } else if e || d {
                needed = true;
            }
        }
        if !needed {
            let rule = if slot.dup {
                OptRule::ChainCollapse
            } else if masked_d_live {
                OptRule::MaskStrength
            } else {
                match slot.op.kind() {
                    MicroOpKind::Copy => OptRule::CopyProp,
                    MicroOpKind::Set => OptRule::ConstFold,
                    _ => OptRule::DeadPlane,
                }
            };
            if gate.on(rule) {
                let rs = stats.rule_mut(rule);
                rs.fires += 1;
                rs.removed_uops += 1;
                slot.live = false;
                changed = true;
                continue;
            }
        }
        // Kept: kill the written lane-sets, then revive everything read
        // (kills first so in-place ops end up fully live).
        let mut any_masked = false;
        for &w in &writes {
            let entry = live.entry(w).or_insert_with(|| exit_live(w));
            if BitPlaneVrf::is_masked_target(w) {
                entry.0 = false;
                any_masked = true;
            } else {
                *entry = (false, false);
            }
        }
        for r in slot.op.reads() {
            live.insert(r, (true, true));
        }
        if any_masked {
            live.insert(Plane::Mask, (true, true));
        }
    }
    changed
}

/// Copy-coalescing peephole: for `Copy {scratch → dst}`, retarget the
/// scratch plane's defining write straight at `dst` and drop the copy,
/// when nothing between the def and the copy touches either plane and the
/// scratch value is dead after the copy.
fn coalesce(slots: &mut [Slot], gate: &RuleGate, stats: &mut OptStats) -> bool {
    if !gate.on(OptRule::CopyProp) {
        return false;
    }
    let mut changed = false;
    let n = slots.len();
    for k in 0..n {
        if !slots[k].live {
            continue;
        }
        let MicroOp::Copy { a: src, out: dst } = slots[k].op else {
            continue;
        };
        let Plane::Scratch(si) = src else { continue };
        // The FullAdd latch is hardware-reserved; leave it alone.
        if usize::from(si) == SCRATCH_PLANES - 1 {
            continue;
        }
        if src == dst || matches!(dst, Plane::Mask | Plane::Const(_)) {
            continue;
        }
        // Walk back to the defining write of `src`; bail on any
        // intervening read of `src` or any touch of `dst`.
        let mut def = None;
        for j in (0..k).rev() {
            if !slots[j].live {
                continue;
            }
            let op = slots[j].op;
            if op.writes().contains(&src) {
                def = Some(j);
                break;
            }
            if op.reads().contains(&src) || op.reads().contains(&dst) || op.writes().contains(&dst)
            {
                break;
            }
        }
        let Some(j) = def else { continue };
        // `src` must be dead after the copy.
        let mut dead = true;
        for m in slots.iter().take(n).skip(k + 1) {
            if !m.live {
                continue;
            }
            if m.op.reads().contains(&src) {
                dead = false;
                break;
            }
            if m.op.writes().contains(&src) {
                break;
            }
        }
        if !dead {
            continue;
        }
        // Retarget the def. The redirected write adopts `dst`'s natural
        // maskedness, which is exactly what the deleted Copy applied.
        let redirected = match &mut slots[j].op {
            MicroOp::Nor { out, .. }
            | MicroOp::Tra { out, .. }
            | MicroOp::Not { out, .. }
            | MicroOp::And { out, .. }
            | MicroOp::Or { out, .. }
            | MicroOp::Xor { out, .. }
            | MicroOp::Copy { out, .. }
            | MicroOp::Set { out, .. }
            | MicroOp::Lut { out, .. }
                if *out == src =>
            {
                *out = dst;
                true
            }
            MicroOp::FullAdd { carry, sum, .. }
                if *sum == src && *carry != src && dst != *carry && dst != latch_plane() =>
            {
                *sum = dst;
                true
            }
            _ => false,
        };
        if redirected {
            slots[k].live = false;
            let rs = stats.rule_mut(OptRule::CopyProp);
            rs.fires += 1;
            rs.removed_uops += 1;
            changed = true;
        }
    }
    changed
}
