//! Gate synthesis on top of technology micro-ops.
//!
//! Every backend natively supports one *logic family* (paper §II-B):
//!
//! * [`LogicFamily::Nor`] — ReRAM crossbars (RACER/OSCAR): NOR is the only
//!   combinational primitive, plus buffered copies. Full adders use the
//!   classic 9-NOR netlist.
//! * [`LogicFamily::Maj`] — DRAM multiple-row activation (MIMDRAM/Ambit):
//!   triple-row-activate majority votes, specialized to AND/OR with preset
//!   rows, plus dual-contact-cell NOT and row copies.
//! * [`LogicFamily::Bitline`] — SRAM bitline computing (Duality Cache):
//!   native AND/OR/XOR/NOT plus a single-operation CMOS full adder.
//!
//! [`GateBuilder`] emits micro-op sequences for common gates using only the
//! family's primitives; `crate::recipe` composes these into full
//! instruction recipes. Tests verify each synthesized gate against its
//! boolean truth table *by actually executing the micro-ops*.

use crate::bitplane::{Plane, SCRATCH_PLANES};
use crate::microop::{MicroOp, MicroOpKind};
use serde::{Deserialize, Serialize};

/// The combinational primitive set a backend exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicFamily {
    /// NOR-complete (ReRAM crossbars).
    Nor,
    /// Majority/NOT-complete (DRAM triple-row activation).
    Maj,
    /// AND/OR/XOR/NOT plus CMOS full adder (SRAM bitline).
    Bitline,
    /// Arbitrary 3-input LUT queries (pLUTo LUT-in-DRAM): every gate is a
    /// single pre-programmed row activation.
    Lut,
    /// No inter-lane bit-plane primitives at all (UPMEM-style DPUs):
    /// recipes fall back to word-serial execution of whole instructions
    /// by the near-bank core ([`MicroOp::Word`]).
    WordSerial,
}

impl LogicFamily {
    /// The micro-op kinds this family's synthesized recipes may contain.
    pub fn supported_kinds(self) -> &'static [MicroOpKind] {
        match self {
            LogicFamily::Nor => &[MicroOpKind::Nor, MicroOpKind::Copy, MicroOpKind::Set],
            LogicFamily::Maj => {
                &[MicroOpKind::Tra, MicroOpKind::Not, MicroOpKind::Copy, MicroOpKind::Set]
            }
            LogicFamily::Bitline => &[
                MicroOpKind::And,
                MicroOpKind::Or,
                MicroOpKind::Xor,
                MicroOpKind::Not,
                MicroOpKind::FullAdd,
                MicroOpKind::Copy,
                MicroOpKind::Set,
            ],
            LogicFamily::Lut => &[MicroOpKind::Lut, MicroOpKind::Copy, MicroOpKind::Set],
            LogicFamily::WordSerial => {
                &[MicroOpKind::WordAlu, MicroOpKind::WordMul, MicroOpKind::WordDiv]
            }
        }
    }

    /// Whether `kind` is legal for this family (membership test over
    /// [`LogicFamily::supported_kinds`]). Used by the recipe optimizer to
    /// legalize kind-changing rewrites.
    pub fn supports(self, kind: MicroOpKind) -> bool {
        self.supported_kinds().contains(&kind)
    }
}

/// Emits micro-op sequences realizing boolean gates with one logic family's
/// primitives, managing scratch-plane allocation.
///
/// Scratch planes `0..SCRATCH_PLANES-1` are allocatable; the last plane is
/// reserved for [`MicroOp::FullAdd`]'s internal latch.
#[derive(Debug)]
pub struct GateBuilder {
    family: LogicFamily,
    ops: Vec<MicroOp>,
    free: Vec<u16>,
    high_water: usize,
}

impl GateBuilder {
    /// Creates a builder for `family` with an empty op stream.
    pub fn new(family: LogicFamily) -> Self {
        // Last scratch plane is reserved for FullAdd's internal temp.
        let free: Vec<u16> = (0..(SCRATCH_PLANES as u16 - 1)).rev().collect();
        Self { family, ops: Vec::new(), free, high_water: 0 }
    }

    /// The family this builder synthesizes for.
    pub fn family(&self) -> LogicFamily {
        self.family
    }

    /// Consumes the builder, returning the emitted micro-op stream.
    pub fn finish(self) -> Vec<MicroOp> {
        self.ops
    }

    /// Number of micro-ops emitted so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Largest number of scratch planes simultaneously live (for sizing
    /// buffer rows in hardware).
    pub fn scratch_high_water(&self) -> usize {
        self.high_water
    }

    /// Allocates a scratch plane.
    ///
    /// # Panics
    ///
    /// Panics if the recipe exceeds the hardware's scratch/buffer budget —
    /// a recipe bug, not a data-dependent condition.
    pub fn alloc(&mut self) -> Plane {
        let i = self.free.pop().expect("recipe exceeded scratch-plane budget");
        let live = SCRATCH_PLANES - 1 - self.free.len();
        self.high_water = self.high_water.max(live);
        Plane::Scratch(i)
    }

    /// Releases a scratch plane allocated with [`GateBuilder::alloc`].
    pub fn release(&mut self, plane: Plane) {
        match plane {
            Plane::Scratch(i) => self.free.push(i),
            _ => panic!("released a non-scratch plane"),
        }
    }

    /// Emits a raw micro-op (must belong to the family's supported kinds).
    pub fn emit(&mut self, op: MicroOp) {
        debug_assert!(
            self.family.supported_kinds().contains(&op.kind()),
            "{:?} not supported by {:?} family",
            op.kind(),
            self.family
        );
        self.ops.push(op);
    }

    /// Emits a 2-input LUT query (index bit 2 tied to constant zero).
    fn lut2(&mut self, a: Plane, b: Plane, table: u8, out: Plane) {
        self.emit(MicroOp::Lut { a, b, c: Plane::Const(false), out, table });
    }

    /// The word-serial family has no bit-plane gates; recipe synthesis
    /// bypasses the gate builder entirely (`recipe::build_word_recipe`).
    fn no_gates(&self) -> ! {
        unreachable!("word-serial recipes bypass gate synthesis")
    }

    /// `out = !a`.
    pub fn not(&mut self, a: Plane, out: Plane) {
        match self.family {
            LogicFamily::Nor => self.emit(MicroOp::Nor { a, b: a, out }),
            LogicFamily::Maj | LogicFamily::Bitline => self.emit(MicroOp::Not { a, out }),
            LogicFamily::Lut => self.lut2(a, Plane::Const(false), 0x01, out),
            LogicFamily::WordSerial => self.no_gates(),
        }
    }

    /// `out = a & b`.
    pub fn and(&mut self, a: Plane, b: Plane, out: Plane) {
        match self.family {
            LogicFamily::Nor => {
                let na = self.alloc();
                let nb = self.alloc();
                self.not(a, na);
                self.not(b, nb);
                self.emit(MicroOp::Nor { a: na, b: nb, out });
                self.release(nb);
                self.release(na);
            }
            LogicFamily::Maj => self.emit(MicroOp::Tra { a, b, c: Plane::Const(false), out }),
            LogicFamily::Bitline => self.emit(MicroOp::And { a, b, out }),
            LogicFamily::Lut => self.lut2(a, b, 0x08, out),
            LogicFamily::WordSerial => self.no_gates(),
        }
    }

    /// `out = a | b`.
    pub fn or(&mut self, a: Plane, b: Plane, out: Plane) {
        match self.family {
            LogicFamily::Nor => {
                let t = self.alloc();
                self.emit(MicroOp::Nor { a, b, out: t });
                self.not(t, out);
                self.release(t);
            }
            LogicFamily::Maj => self.emit(MicroOp::Tra { a, b, c: Plane::Const(true), out }),
            LogicFamily::Bitline => self.emit(MicroOp::Or { a, b, out }),
            LogicFamily::Lut => self.lut2(a, b, 0x0e, out),
            LogicFamily::WordSerial => self.no_gates(),
        }
    }

    /// `out = !(a | b)`.
    pub fn nor(&mut self, a: Plane, b: Plane, out: Plane) {
        match self.family {
            LogicFamily::Nor => self.emit(MicroOp::Nor { a, b, out }),
            LogicFamily::Maj | LogicFamily::Bitline => {
                let t = self.alloc();
                self.or(a, b, t);
                self.not(t, out);
                self.release(t);
            }
            LogicFamily::Lut => self.lut2(a, b, 0x01, out),
            LogicFamily::WordSerial => self.no_gates(),
        }
    }

    /// `out = !(a & b)`.
    pub fn nand(&mut self, a: Plane, b: Plane, out: Plane) {
        if self.family == LogicFamily::Lut {
            self.lut2(a, b, 0x07, out);
            return;
        }
        let t = self.alloc();
        self.and(a, b, t);
        self.not(t, out);
        self.release(t);
    }

    /// `out = a ^ b`.
    pub fn xor(&mut self, a: Plane, b: Plane, out: Plane) {
        match self.family {
            LogicFamily::Nor => {
                // out = NOR(NOR(a,b), AND(a,b)) — 5 NORs total.
                let nab = self.alloc();
                let aab = self.alloc();
                self.emit(MicroOp::Nor { a, b, out: nab });
                self.and(a, b, aab);
                self.emit(MicroOp::Nor { a: nab, b: aab, out });
                self.release(aab);
                self.release(nab);
            }
            LogicFamily::Maj => {
                // (a & !b) | (!a & b): 2 NOTs + 3 TRAs.
                let na = self.alloc();
                let nb = self.alloc();
                let t1 = self.alloc();
                let t2 = self.alloc();
                self.not(a, na);
                self.not(b, nb);
                self.and(a, nb, t1);
                self.and(na, b, t2);
                self.or(t1, t2, out);
                self.release(t2);
                self.release(t1);
                self.release(nb);
                self.release(na);
            }
            LogicFamily::Bitline => self.emit(MicroOp::Xor { a, b, out }),
            LogicFamily::Lut => self.lut2(a, b, 0x06, out),
            LogicFamily::WordSerial => self.no_gates(),
        }
    }

    /// `out = !(a ^ b)`.
    pub fn xnor(&mut self, a: Plane, b: Plane, out: Plane) {
        if self.family == LogicFamily::Lut {
            self.lut2(a, b, 0x09, out);
            return;
        }
        let t = self.alloc();
        self.xor(a, b, t);
        self.not(t, out);
        self.release(t);
    }

    /// `out = maj(a, b, c)`.
    pub fn maj(&mut self, a: Plane, b: Plane, c: Plane, out: Plane) {
        match self.family {
            LogicFamily::Maj => self.emit(MicroOp::Tra { a, b, c, out }),
            LogicFamily::Lut => self.emit(MicroOp::Lut { a, b, c, out, table: 0xe8 }),
            LogicFamily::WordSerial => self.no_gates(),
            LogicFamily::Nor | LogicFamily::Bitline => {
                // maj = ab | bc | ca.
                let ab = self.alloc();
                let bc = self.alloc();
                let ca = self.alloc();
                self.and(a, b, ab);
                self.and(b, c, bc);
                self.and(c, a, ca);
                let t = self.alloc();
                self.or(ab, bc, t);
                self.or(t, ca, out);
                self.release(t);
                self.release(ca);
                self.release(bc);
                self.release(ab);
            }
        }
    }

    /// `out = (sel & x) | (!sel & y)` — a per-lane 2:1 multiplexer.
    pub fn mux(&mut self, sel: Plane, x: Plane, y: Plane, out: Plane) {
        if self.family == LogicFamily::Lut {
            // table[sel | x<<1 | y<<2] = sel ? x : y → bits {3, 4, 6, 7}.
            self.emit(MicroOp::Lut { a: sel, b: x, c: y, out, table: 0xd8 });
            return;
        }
        let nsel = self.alloc();
        let tx = self.alloc();
        let ty = self.alloc();
        self.not(sel, nsel);
        self.and(sel, x, tx);
        self.and(nsel, y, ty);
        self.or(tx, ty, out);
        self.release(ty);
        self.release(tx);
        self.release(nsel);
    }

    /// Copies `a` into `out` (buffered row copy).
    pub fn copy(&mut self, a: Plane, out: Plane) {
        self.emit(MicroOp::Copy { a, out });
    }

    /// Presets `out` to a constant.
    pub fn set(&mut self, out: Plane, value: bool) {
        self.emit(MicroOp::Set { out, value });
    }

    /// Full adder: `sum_out = a ^ b ^ carry`, `carry = maj(a, b, carry)`.
    ///
    /// The carry plane is read and then overwritten with the carry-out,
    /// matching the ripple-carry usage pattern of bit-serial arithmetic.
    /// `sum_out` may alias `a` or `b` (sum is staged through scratch), but
    /// not `carry`.
    pub fn full_add(&mut self, a: Plane, b: Plane, carry: Plane, sum_out: Plane) {
        debug_assert!(sum_out != carry, "sum must not alias the carry plane");
        match self.family {
            LogicFamily::Nor => {
                // Classic 9-NOR full adder.
                let n1 = self.alloc();
                let n2 = self.alloc();
                let n3 = self.alloc();
                let n4 = self.alloc();
                let n5 = self.alloc();
                let n6 = self.alloc();
                let n7 = self.alloc();
                let s = self.alloc();
                self.emit(MicroOp::Nor { a, b, out: n1 });
                self.emit(MicroOp::Nor { a, b: n1, out: n2 });
                self.emit(MicroOp::Nor { a: b, b: n1, out: n3 });
                self.emit(MicroOp::Nor { a: n2, b: n3, out: n4 }); // xnor(a,b)
                self.emit(MicroOp::Nor { a: n4, b: carry, out: n5 });
                self.emit(MicroOp::Nor { a: n4, b: n5, out: n6 });
                self.emit(MicroOp::Nor { a: carry, b: n5, out: n7 });
                self.emit(MicroOp::Nor { a: n6, b: n7, out: s });
                self.emit(MicroOp::Nor { a: n1, b: n5, out: carry }); // carry-out
                self.copy(s, sum_out);
                self.release(s);
                self.release(n7);
                self.release(n6);
                self.release(n5);
                self.release(n4);
                self.release(n3);
                self.release(n2);
                self.release(n1);
            }
            LogicFamily::Maj => {
                // SIMDRAM-style majority-only adder:
                //   cout = MAJ(a, b, cin)
                //   sum  = MAJ(MAJ(a, b, !cout), cin, !cout)
                // 3 TRAs + 1 NOT + 1 copy-back.
                let cnew = self.alloc();
                let ncnew = self.alloc();
                let t = self.alloc();
                self.emit(MicroOp::Tra { a, b, c: carry, out: cnew });
                self.not(cnew, ncnew);
                self.emit(MicroOp::Tra { a, b, c: ncnew, out: t });
                self.emit(MicroOp::Tra { a: t, b: carry, c: ncnew, out: sum_out });
                self.copy(cnew, carry);
                self.release(t);
                self.release(ncnew);
                self.release(cnew);
            }
            LogicFamily::Bitline => {
                self.emit(MicroOp::FullAdd { a, b, carry, sum: sum_out });
            }
            LogicFamily::Lut => {
                // Two LUT queries: parity (sum) staged through scratch so
                // `sum_out` may alias an addend, then majority (carry-out)
                // written in place over the carry-in.
                let t = self.alloc();
                self.emit(MicroOp::Lut { a, b, c: carry, out: t, table: 0x96 });
                self.emit(MicroOp::Lut { a, b, c: carry, out: carry, table: 0xe8 });
                self.copy(t, sum_out);
                self.release(t);
            }
            LogicFamily::WordSerial => self.no_gates(),
        }
    }

    /// Half adder: `sum_out = a ^ carry`, `carry = a & carry` (used by
    /// increments and carry propagation).
    pub fn half_add(&mut self, a: Plane, carry: Plane, sum_out: Plane) {
        debug_assert!(sum_out != carry, "sum must not alias the carry plane");
        let s = self.alloc();
        let c = self.alloc();
        self.xor(a, carry, s);
        self.and(a, carry, c);
        self.copy(c, carry);
        self.copy(s, sum_out);
        self.release(c);
        self.release(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitplane::BitPlaneVrf;

    const FAMILIES: [LogicFamily; 4] =
        [LogicFamily::Nor, LogicFamily::Maj, LogicFamily::Bitline, LogicFamily::Lut];

    /// Executes the builder's ops on a fresh VRF whose scratch planes 20/21/22
    /// hold all four (or eight) input combinations, then checks `out`.
    fn check_gate2(
        family: LogicFamily,
        build: impl Fn(&mut GateBuilder, Plane, Plane, Plane),
        truth: impl Fn(bool, bool) -> bool,
    ) {
        let a = Plane::Scratch(20);
        let b = Plane::Scratch(21);
        let out = Plane::Scratch(22);
        let mut gb = GateBuilder::new(family);
        build(&mut gb, a, b, out);
        // Inputs must survive gate execution (non-destructive synthesis).
        let mut vrf = BitPlaneVrf::new(64, 2);
        vrf.set_plane_words(a, &[0b1010]);
        vrf.set_plane_words(b, &[0b1100]);
        for op in gb.finish() {
            op.apply(&mut vrf);
        }
        for lane in 0..4 {
            let ia = lane % 2 == 1;
            let ib = lane >= 2;
            assert_eq!(
                vrf.lane_bit(out, lane),
                truth(ia, ib),
                "{family:?} lane {lane} (a={ia}, b={ib})"
            );
        }
        assert_eq!(vrf.plane_words(a)[0] & 0xf, 0b1010, "{family:?} clobbered input a");
        assert_eq!(vrf.plane_words(b)[0] & 0xf, 0b1100, "{family:?} clobbered input b");
    }

    #[test]
    fn gate_truth_tables_all_families() {
        for family in FAMILIES {
            check_gate2(family, |g, a, b, o| g.and(a, b, o), |x, y| x & y);
            check_gate2(family, |g, a, b, o| g.or(a, b, o), |x, y| x | y);
            check_gate2(family, |g, a, b, o| g.xor(a, b, o), |x, y| x ^ y);
            check_gate2(family, |g, a, b, o| g.nor(a, b, o), |x, y| !(x | y));
            check_gate2(family, |g, a, b, o| g.nand(a, b, o), |x, y| !(x & y));
            check_gate2(family, |g, a, b, o| g.xnor(a, b, o), |x, y| !(x ^ y));
            check_gate2(family, |g, a, _b, o| g.not(a, o), |x, _| !x);
        }
    }

    #[test]
    fn full_adder_all_families_all_inputs() {
        for family in FAMILIES {
            let a = Plane::Scratch(20);
            let b = Plane::Scratch(21);
            let c = Plane::Scratch(22);
            let sum = Plane::Scratch(19);
            let mut gb = GateBuilder::new(family);
            gb.full_add(a, b, c, sum);
            let ops = gb.finish();
            // 8 lanes encode the 8 input combinations.
            let mut vrf = BitPlaneVrf::new(64, 2);
            vrf.set_plane_words(a, &[0b1010_1010]);
            vrf.set_plane_words(b, &[0b1100_1100]);
            vrf.set_plane_words(c, &[0b1111_0000]);
            for op in &ops {
                op.apply(&mut vrf);
            }
            for lane in 0..8 {
                let ia = lane % 2;
                let ib = (lane / 2) % 2;
                let ic = lane / 4;
                let total = ia + ib + ic;
                assert_eq!(vrf.lane_bit(sum, lane), total % 2 == 1, "{family:?} sum lane {lane}");
                assert_eq!(vrf.lane_bit(c, lane), total >= 2, "{family:?} carry lane {lane}");
            }
        }
    }

    #[test]
    fn maj_and_mux_all_families() {
        for family in FAMILIES {
            // maj over 8 combinations.
            let (a, b, c, out) =
                (Plane::Scratch(20), Plane::Scratch(21), Plane::Scratch(22), Plane::Scratch(19));
            let mut gb = GateBuilder::new(family);
            gb.maj(a, b, c, out);
            let mut vrf = BitPlaneVrf::new(64, 2);
            vrf.set_plane_words(a, &[0b1010_1010]);
            vrf.set_plane_words(b, &[0b1100_1100]);
            vrf.set_plane_words(c, &[0b1111_0000]);
            for op in gb.finish() {
                op.apply(&mut vrf);
            }
            for lane in 0..8 {
                let bits = (lane % 2) + ((lane / 2) % 2) + (lane / 4);
                assert_eq!(vrf.lane_bit(out, lane), bits >= 2, "{family:?} maj lane {lane}");
            }

            // mux over 8 combinations (sel, x, y).
            let mut gb = GateBuilder::new(family);
            gb.mux(a, b, c, out);
            let mut vrf = BitPlaneVrf::new(64, 2);
            vrf.set_plane_words(a, &[0b1010_1010]); // sel
            vrf.set_plane_words(b, &[0b1100_1100]); // x
            vrf.set_plane_words(c, &[0b1111_0000]); // y
            for op in gb.finish() {
                op.apply(&mut vrf);
            }
            for lane in 0..8 {
                let sel = lane % 2 == 1;
                let x = (lane / 2) % 2 == 1;
                let y = lane / 4 == 1;
                assert_eq!(
                    vrf.lane_bit(out, lane),
                    if sel { x } else { y },
                    "{family:?} mux {lane}"
                );
            }
        }
    }

    #[test]
    fn emitted_ops_stay_within_family() {
        for family in FAMILIES {
            let mut gb = GateBuilder::new(family);
            let a = Plane::Scratch(20);
            let b = Plane::Scratch(21);
            let o = Plane::Scratch(22);
            gb.xor(a, b, o);
            gb.full_add(a, b, Plane::Scratch(19), o);
            gb.maj(a, b, Plane::Scratch(19), o);
            for op in gb.finish() {
                assert!(
                    family.supported_kinds().contains(&op.kind()),
                    "{family:?} emitted unsupported {:?}",
                    op.kind()
                );
            }
        }
    }

    #[test]
    fn scratch_allocation_balances() {
        let mut gb = GateBuilder::new(LogicFamily::Nor);
        let before = gb.free.len();
        let a = Plane::Scratch(20);
        let b = Plane::Scratch(21);
        let o = Plane::Scratch(22);
        gb.xor(a, b, o);
        gb.full_add(a, b, Plane::Scratch(19), o);
        assert_eq!(gb.free.len(), before, "scratch planes leaked");
        assert!(gb.scratch_high_water() > 0);
    }

    #[test]
    fn nor_family_costs_match_textbook_counts() {
        let a = Plane::Scratch(20);
        let b = Plane::Scratch(21);
        let o = Plane::Scratch(22);
        let mut gb = GateBuilder::new(LogicFamily::Nor);
        gb.xor(a, b, o);
        assert_eq!(gb.len(), 5, "XOR should be 5 NORs");
        let mut gb = GateBuilder::new(LogicFamily::Nor);
        gb.full_add(a, b, Plane::Scratch(19), o);
        assert_eq!(gb.len(), 10, "full adder should be 9 NORs + 1 copy");
    }

    #[test]
    fn lut_family_costs_one_query_per_gate() {
        let a = Plane::Scratch(20);
        let b = Plane::Scratch(21);
        let o = Plane::Scratch(22);
        for build in [
            (|g: &mut GateBuilder, a, b, o| g.and(a, b, o)) as fn(&mut GateBuilder, _, _, _),
            |g, a, b, o| g.or(a, b, o),
            |g, a, b, o| g.xor(a, b, o),
            |g, a, b, o| g.nand(a, b, o),
            |g, a, b, o| g.xnor(a, b, o),
            |g, a, b, o| g.mux(a, b, Plane::Scratch(19), o),
        ] {
            let mut gb = GateBuilder::new(LogicFamily::Lut);
            build(&mut gb, a, b, o);
            assert_eq!(gb.len(), 1, "every LUT-family gate is a single row query");
        }
        let mut gb = GateBuilder::new(LogicFamily::Lut);
        gb.full_add(a, b, Plane::Scratch(19), o);
        assert_eq!(gb.len(), 3, "LUT full adder: parity + majority + copy-back");
    }
}
