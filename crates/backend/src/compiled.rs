//! Pre-compiled recipes: micro-op sequences with plane addresses resolved.
//!
//! [`MicroOp::apply`] re-resolves every `Plane` operand — a match plus
//! bounds asserts — on every application, and a 32-bit MUL replays ~19k
//! micro-ops per VRF per wave. [`CompiledRecipe`] hoists that work to
//! synthesis time: each operand becomes a word offset into the VRF's flat
//! storage, and each output carries its precomputed "honours the lane
//! mask" flag. The compiled form is built once per `(recipe, geometry)`
//! and cached alongside the recipe in the simulator's recipe cache/pool,
//! so the steady-state execution loop is pure word arithmetic.
//!
//! Compilation is purely an address-resolution step: a compiled recipe
//! executes the *same* plane writes in the same order as interpreting the
//! micro-ops, so results are byte-identical (differential tests in
//! `tests/inplace_differential.rs` enforce this).

use crate::bitplane::{BitPlaneVrf, Plane, SCRATCH_PLANES};
use crate::microop::{lut3_word, MicroOp, MicroOpKind};
use crate::DATA_BITS;
use mpu_isa::Instruction;

/// Two-input boolean function of a compiled micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Func2 {
    /// `!(a | b)` (ReRAM NOR).
    Nor,
    /// `!a` (input duplicated on both ports).
    NotA,
    /// `a & b`.
    And,
    /// `a | b`.
    Or,
    /// `a ^ b`.
    Xor,
}

/// One micro-op with operands resolved to word offsets into VRF storage.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CompiledOp {
    /// Two-input plane op: `out = func(a, b)`.
    Op2 { func: Func2, a: u32, b: u32, out: u32, masked: bool },
    /// Majority vote: `out = maj(a, b, c)` (DRAM TRA).
    Maj { a: u32, b: u32, c: u32, out: u32, masked: bool },
    /// CMOS full adder; `latch` is the reserved scratch plane staging the
    /// sum so the carry-in can be read before the carry plane is
    /// overwritten — the exact plane-write sequence of the interpreter.
    FullAdd {
        a: u32,
        b: u32,
        carry: u32,
        sum: u32,
        latch: u32,
        carry_masked: bool,
        sum_masked: bool,
    },
    /// Row copy: `out = a`.
    Copy { a: u32, out: u32, masked: bool },
    /// Constant preset: `out = value`.
    Fill { out: u32, masked: bool, value: bool },
    /// pLUTo LUT query: `out = table[a | b<<1 | c<<2]` per lane.
    Lut { a: u32, b: u32, c: u32, out: u32, table: u8, masked: bool },
    /// Word-serial instruction (UPMEM-style DPU). Operands stay symbolic:
    /// execution reads whole registers through the VRF's transpose path,
    /// so there is nothing to pre-resolve — and the fast word loop cannot
    /// run it (the fuser marks traces containing word ops as non-fast).
    Word { instr: Instruction },
}

/// A recipe compiled for one VRF geometry: plane operands resolved to flat
/// storage offsets, mask-target decisions precomputed.
///
/// Built via [`crate::Recipe::compile`] and executed with
/// [`BitPlaneVrf::run_compiled`]. Execution is byte-identical to
/// interpreting the recipe's micro-ops in order.
#[derive(Debug, Clone)]
pub struct CompiledRecipe {
    ops: Vec<CompiledOp>,
    lanes: usize,
    regs: usize,
    mix: [u32; MicroOpKind::ALL.len()],
}

impl CompiledRecipe {
    /// Lane count this recipe was compiled for.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Architectural register count this recipe was compiled for.
    pub fn regs(&self) -> usize {
        self.regs
    }

    /// Number of compiled micro-ops (equals the source recipe's length).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for the empty recipe.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Micro-op counts per kind, indexed by [`MicroOpKind::index`].
    /// Precomputed at compile time so execution tracing can attribute
    /// micro-op classes without rescanning the recipe.
    pub fn mix(&self) -> [u32; MicroOpKind::ALL.len()] {
        self.mix
    }

    /// The resolved op sequence (ensemble-trace fusion concatenates these).
    pub(crate) fn ops(&self) -> &[CompiledOp] {
        &self.ops
    }
}

/// Plane-address resolver for a VRF geometry; mirrors the (private)
/// layout arithmetic of [`BitPlaneVrf`], including its panic conditions,
/// so compile-time errors match interpret-time errors.
struct Layout {
    regs: usize,
    words: usize,
}

impl Layout {
    fn base(&self, plane: Plane) -> u32 {
        let arch = self.regs * DATA_BITS as usize;
        let index = match plane {
            Plane::Reg { reg, bit } => {
                let (reg, bit) = (reg as usize, bit as usize);
                assert!(reg < self.regs, "register {reg} out of range (VRF has {})", self.regs);
                assert!(bit < DATA_BITS as usize, "bit {bit} out of range");
                reg * DATA_BITS as usize + bit
            }
            Plane::Scratch(i) => {
                assert!((i as usize) < SCRATCH_PLANES, "scratch plane {i} out of range");
                arch + i as usize
            }
            Plane::Cond => arch + SCRATCH_PLANES,
            Plane::Mask => arch + SCRATCH_PLANES + 1,
            Plane::Const(false) => arch + SCRATCH_PLANES + 2,
            Plane::Const(true) => arch + SCRATCH_PLANES + 3,
        };
        (index * self.words) as u32
    }

    fn out(&self, plane: Plane) -> (u32, bool) {
        assert!(!matches!(plane, Plane::Const(_)), "constant planes are read-only");
        (self.base(plane), BitPlaneVrf::is_masked_target(plane))
    }
}

/// Compiles a micro-op sequence for a `(lanes, regs)` VRF geometry.
pub(crate) fn compile(ops: &[MicroOp], lanes: usize, regs: usize) -> CompiledRecipe {
    assert!(lanes > 0, "a VRF needs at least one lane");
    assert!(regs > 0 && regs <= 64, "register count must be in 1..=64");
    let layout = Layout { regs, words: lanes.div_ceil(64) };
    let latch = layout.base(Plane::Scratch(SCRATCH_PLANES as u16 - 1));
    let mut mix = [0u32; MicroOpKind::ALL.len()];
    for op in ops {
        mix[op.kind().index()] += 1;
    }
    let compiled = ops
        .iter()
        .map(|op| match *op {
            MicroOp::Nor { a, b, out } => {
                let (out, masked) = layout.out(out);
                CompiledOp::Op2 {
                    func: Func2::Nor,
                    a: layout.base(a),
                    b: layout.base(b),
                    out,
                    masked,
                }
            }
            MicroOp::Not { a, out } => {
                let (out, masked) = layout.out(out);
                let a = layout.base(a);
                CompiledOp::Op2 { func: Func2::NotA, a, b: a, out, masked }
            }
            MicroOp::And { a, b, out } => {
                let (out, masked) = layout.out(out);
                CompiledOp::Op2 {
                    func: Func2::And,
                    a: layout.base(a),
                    b: layout.base(b),
                    out,
                    masked,
                }
            }
            MicroOp::Or { a, b, out } => {
                let (out, masked) = layout.out(out);
                CompiledOp::Op2 {
                    func: Func2::Or,
                    a: layout.base(a),
                    b: layout.base(b),
                    out,
                    masked,
                }
            }
            MicroOp::Xor { a, b, out } => {
                let (out, masked) = layout.out(out);
                CompiledOp::Op2 {
                    func: Func2::Xor,
                    a: layout.base(a),
                    b: layout.base(b),
                    out,
                    masked,
                }
            }
            MicroOp::Tra { a, b, c, out } => {
                let (out, masked) = layout.out(out);
                CompiledOp::Maj {
                    a: layout.base(a),
                    b: layout.base(b),
                    c: layout.base(c),
                    out,
                    masked,
                }
            }
            MicroOp::FullAdd { a, b, carry, sum } => {
                let (carry, carry_masked) = layout.out(carry);
                let (sum, sum_masked) = layout.out(sum);
                CompiledOp::FullAdd {
                    a: layout.base(a),
                    b: layout.base(b),
                    carry,
                    sum,
                    latch,
                    carry_masked,
                    sum_masked,
                }
            }
            MicroOp::Copy { a, out } => {
                let (out, masked) = layout.out(out);
                CompiledOp::Copy { a: layout.base(a), out, masked }
            }
            MicroOp::Set { out, value } => {
                let (out, masked) = layout.out(out);
                CompiledOp::Fill { out, masked, value }
            }
            MicroOp::Lut { a, b, c, out, table } => {
                let (out, masked) = layout.out(out);
                CompiledOp::Lut {
                    a: layout.base(a),
                    b: layout.base(b),
                    c: layout.base(c),
                    out,
                    table,
                    masked,
                }
            }
            MicroOp::Word { instr } => CompiledOp::Word { instr },
        })
        .collect();
    CompiledRecipe { ops: compiled, lanes, regs, mix }
}

/// Executes a compiled recipe over a VRF's flat storage. Called through
/// [`BitPlaneVrf::run_compiled`], which has already checked the geometry.
pub(crate) fn run(vrf: &mut BitPlaneVrf, recipe: &CompiledRecipe) {
    run_ops(vrf, &recipe.ops);
}

/// Executes a slice of resolved ops — the shared word-loop core of both
/// [`run`] and the fused ensemble-trace tier, so every execution path
/// performs the identical plane writes (and fault-site draws) in the
/// identical order.
pub(crate) fn run_ops(vrf: &mut BitPlaneVrf, ops: &[CompiledOp]) {
    // GETMASK-style mask suspension is a control-path affair, but honour it
    // here too so compiled and interpreted execution can never diverge.
    let me = vrf.mask_enabled();
    let inject = vrf.fault_model().is_some();
    for op in ops {
        // With a fault model attached, draw exactly one transient-fault
        // site per micro-op on its output plane — the same `(kind, plane)`
        // sequence the interpreter draws, so both paths stay
        // byte-identical under injection.
        match *op {
            CompiledOp::Op2 { func, a, b, out, masked } => {
                let (a, b, out, masked) = (a as usize, b as usize, out as usize, masked && me);
                match func {
                    Func2::Nor => vrf.op2(a, b, out, masked, |x, y| !(x | y)),
                    Func2::NotA => vrf.op2(a, b, out, masked, |x, _| !x),
                    Func2::And => vrf.op2(a, b, out, masked, |x, y| x & y),
                    Func2::Or => vrf.op2(a, b, out, masked, |x, y| x | y),
                    Func2::Xor => vrf.op2(a, b, out, masked, |x, y| x ^ y),
                }
                if inject {
                    let kind = match func {
                        Func2::Nor => MicroOpKind::Nor,
                        Func2::NotA => MicroOpKind::Not,
                        Func2::And => MicroOpKind::And,
                        Func2::Or => MicroOpKind::Or,
                        Func2::Xor => MicroOpKind::Xor,
                    };
                    vrf.post_op_at(kind, out);
                }
            }
            CompiledOp::Maj { a, b, c, out, masked } => {
                vrf.op3(
                    a as usize,
                    b as usize,
                    c as usize,
                    out as usize,
                    masked && me,
                    |x, y, z| (x & y) | (y & z) | (x & z),
                );
                if inject {
                    vrf.post_op_at(MicroOpKind::Tra, out as usize);
                }
            }
            CompiledOp::FullAdd { a, b, carry, sum, latch, carry_masked, sum_masked } => {
                let (a, b, carry) = (a as usize, b as usize, carry as usize);
                // Same three plane writes, in the same order, as the
                // interpreted FullAdd: stage the sum, update the carry,
                // then land the sum.
                vrf.op3(a, b, carry, latch as usize, false, |x, y, z| x ^ y ^ z);
                vrf.op3(a, b, carry, carry, carry_masked && me, |x, y, z| {
                    (x & y) | (y & z) | (x & z)
                });
                vrf.copy_op(latch as usize, sum as usize, sum_masked && me);
                if inject {
                    vrf.post_op_at(MicroOpKind::FullAdd, sum as usize);
                }
            }
            CompiledOp::Copy { a, out, masked } => {
                vrf.copy_op(a as usize, out as usize, masked && me);
                if inject {
                    vrf.post_op_at(MicroOpKind::Copy, out as usize);
                }
            }
            CompiledOp::Fill { out, masked, value } => {
                vrf.fill_op(out as usize, masked && me, value);
                if inject {
                    vrf.post_op_at(MicroOpKind::Set, out as usize);
                }
            }
            CompiledOp::Lut { a, b, c, out, table, masked } => {
                vrf.op3(
                    a as usize,
                    b as usize,
                    c as usize,
                    out as usize,
                    masked && me,
                    |x, y, z| lut3_word(table, x, y, z),
                );
                if inject {
                    vrf.post_op_at(MicroOpKind::Lut, out as usize);
                }
            }
            CompiledOp::Word { instr } => {
                // Re-dispatch through the interpreter's op: `apply` calls
                // the shared word evaluator and then makes the same single
                // fault draw on the primary destination, so both tiers are
                // byte-identical by construction.
                MicroOp::Word { instr }.apply(vrf);
            }
        }
    }
}

/// Pointwise two-input word loop without post-write bookkeeping.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn op2_fast(
    st: &mut [u64],
    words: usize,
    mask: usize,
    a: usize,
    b: usize,
    out: usize,
    masked: bool,
    f: impl Fn(u64, u64) -> u64,
) {
    if masked {
        for w in 0..words {
            let new = f(st[a + w], st[b + w]);
            let m = st[mask + w];
            st[out + w] = (new & m) | (st[out + w] & !m);
        }
    } else {
        for w in 0..words {
            st[out + w] = f(st[a + w], st[b + w]);
        }
    }
}

/// Pointwise three-input word loop without post-write bookkeeping.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn op3_fast(
    st: &mut [u64],
    words: usize,
    mask: usize,
    a: usize,
    b: usize,
    c: usize,
    out: usize,
    masked: bool,
    f: impl Fn(u64, u64, u64) -> u64,
) {
    if masked {
        for w in 0..words {
            let new = f(st[a + w], st[b + w], st[c + w]);
            let m = st[mask + w];
            st[out + w] = (new & m) | (st[out + w] & !m);
        }
    } else {
        for w in 0..words {
            st[out + w] = f(st[a + w], st[b + w], st[c + w]);
        }
    }
}

/// Executes a slice of resolved ops with every [`BitPlaneVrf`] post-write
/// bookkeeping step statically discharged — the ensemble-trace fast path.
///
/// The caller must have proven (the fuser records this as
/// [`crate::EnsembleTrace`]'s fast flag, re-checked per VRF at replay):
///
/// * `lanes % 64 == 0` — no padding bits to re-zero after a write;
/// * no op in the stream writes the mask plane — the cached mask popcount
///   cannot go stale;
/// * no fault model is attached — no fault-site draws, no forced lanes;
/// * mask-honouring is enabled (no suspended `GETMASK` readout in flight).
///
/// Under those conditions `finish_write` is a no-op for every single op,
/// so this loop performs the *identical* plane writes as [`run_ops`] —
/// byte-identical storage afterwards — while touching only the operand
/// words.
pub(crate) fn run_ops_fast(vrf: &mut BitPlaneVrf, ops: &[CompiledOp]) {
    debug_assert!(vrf.fault_model().is_none(), "fast path excludes fault models");
    debug_assert!(vrf.mask_enabled(), "fast path requires mask-honouring enabled");
    debug_assert_eq!(vrf.lanes() % 64, 0, "fast path requires no padding bits");
    let words = vrf.words();
    let mask = vrf.mask_base();
    let st = vrf.storage_mut();
    // Single-word planes (64-lane VRFs, e.g. RACER) are the hottest
    // geometry; the literal-1 call lets the word loops constant-fold away.
    if words == 1 {
        run_ops_fast_inner(st, 1, mask, ops);
    } else {
        run_ops_fast_inner(st, words, mask, ops);
    }
}

#[inline(always)]
fn run_ops_fast_inner(st: &mut [u64], words: usize, mask: usize, ops: &[CompiledOp]) {
    for op in ops {
        match *op {
            CompiledOp::Op2 { func, a, b, out, masked } => {
                let (a, b, out) = (a as usize, b as usize, out as usize);
                match func {
                    Func2::Nor => op2_fast(st, words, mask, a, b, out, masked, |x, y| !(x | y)),
                    Func2::NotA => op2_fast(st, words, mask, a, b, out, masked, |x, _| !x),
                    Func2::And => op2_fast(st, words, mask, a, b, out, masked, |x, y| x & y),
                    Func2::Or => op2_fast(st, words, mask, a, b, out, masked, |x, y| x | y),
                    Func2::Xor => op2_fast(st, words, mask, a, b, out, masked, |x, y| x ^ y),
                }
            }
            CompiledOp::Maj { a, b, c, out, masked } => {
                let (a, b, c, out) = (a as usize, b as usize, c as usize, out as usize);
                op3_fast(st, words, mask, a, b, c, out, masked, |x, y, z| {
                    (x & y) | (y & z) | (x & z)
                });
            }
            CompiledOp::FullAdd { a, b, carry, sum, latch, carry_masked, sum_masked } => {
                let (a, b, carry, sum, latch) =
                    (a as usize, b as usize, carry as usize, sum as usize, latch as usize);
                // Same three plane writes, in the same order, as run_ops.
                op3_fast(st, words, mask, a, b, carry, latch, false, |x, y, z| x ^ y ^ z);
                op3_fast(st, words, mask, a, b, carry, carry, carry_masked, |x, y, z| {
                    (x & y) | (y & z) | (x & z)
                });
                op2_fast(st, words, mask, latch, latch, sum, sum_masked, |x, _| x);
            }
            CompiledOp::Copy { a, out, masked } => {
                let (a, out) = (a as usize, out as usize);
                if masked {
                    op2_fast(st, words, mask, a, a, out, true, |x, _| x);
                } else if a != out {
                    for w in 0..words {
                        st[out + w] = st[a + w];
                    }
                }
            }
            CompiledOp::Fill { out, masked, value } => {
                let out = out as usize;
                let word = if value { !0u64 } else { 0u64 };
                if masked {
                    for w in 0..words {
                        let m = st[mask + w];
                        st[out + w] = (word & m) | (st[out + w] & !m);
                    }
                } else {
                    st[out..out + words].fill(word);
                }
            }
            CompiledOp::Lut { a, b, c, out, table, masked } => {
                let (a, b, c, out) = (a as usize, b as usize, c as usize, out as usize);
                op3_fast(st, words, mask, a, b, c, out, masked, |x, y, z| {
                    lut3_word(table, x, y, z)
                });
            }
            CompiledOp::Word { .. } => {
                // Word ops need the whole VRF (transpose reads/writes), so
                // the fuser never marks traces containing them as fast.
                unreachable!("word-serial ops are excluded from the fast path")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::{build_recipe, RecipeCtx};
    use crate::LogicFamily;
    use mpu_isa::{BinaryOp, Instruction, RegId};

    fn ctx(family: LogicFamily) -> RecipeCtx {
        RecipeCtx { family, temp_regs: (14, 15), opt: Default::default() }
    }

    #[test]
    fn compiled_matches_interpreted_for_add() {
        let instr =
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
        for family in [
            LogicFamily::Nor,
            LogicFamily::Maj,
            LogicFamily::Bitline,
            LogicFamily::Lut,
            LogicFamily::WordSerial,
        ] {
            let recipe = build_recipe(ctx(family), &instr).unwrap();
            let compiled = recipe.compile(100, 16);
            assert_eq!(compiled.len(), recipe.len());

            let mut a = BitPlaneVrf::new(100, 16);
            let xs: Vec<u64> = (0..100).map(|i| i * 3 + 1).collect();
            let ys: Vec<u64> = (0..100).map(|i| i * 7 + 2).collect();
            a.write_lane_values(0, &xs);
            a.write_lane_values(1, &ys);
            let mut b = a.clone();

            for op in recipe.ops() {
                op.apply(&mut a);
            }
            b.run_compiled(&compiled);
            assert_eq!(a, b, "family {family:?}");
        }
    }

    #[test]
    fn fault_injection_is_byte_identical_across_paths() {
        // Both execution paths must draw the same fault-site sequence:
        // one draw per micro-op, on the op's output plane.
        let instr =
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
        for family in [LogicFamily::Nor, LogicFamily::Maj, LogicFamily::Bitline, LogicFamily::Lut] {
            let recipe = build_recipe(ctx(family), &instr).unwrap();
            let compiled = recipe.compile(100, 16);

            let mut a = BitPlaneVrf::new(100, 16);
            a.write_lane_values(0, &[0x1234_5678; 100]);
            a.write_lane_values(1, &[0x9abc_def0; 100]);
            let mut fm = crate::FaultModel::new(0xBEEF, 100);
            for kind in crate::MicroOpKind::ALL {
                fm.set_transient_rate(kind, 0.25);
            }
            a.set_fault_model(Some(fm));
            let mut b = a.clone();

            for op in recipe.ops() {
                op.apply(&mut a);
            }
            b.run_compiled(&compiled);
            assert_eq!(a, b, "family {family:?}");
            let model = a.fault_model().unwrap();
            assert!(model.site() > 0, "a 25% rate over a full ADD recipe must draw");
            assert!(model.injected() > 0, "and some flips must land");
        }
    }

    #[test]
    fn word_fault_injection_is_byte_identical_across_paths() {
        // A word recipe is a single micro-op, so drive the rate to 1.0 to
        // guarantee the one draw lands on both paths.
        let instr =
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
        let recipe = build_recipe(ctx(LogicFamily::WordSerial), &instr).unwrap();
        let compiled = recipe.compile(100, 16);

        let mut a = BitPlaneVrf::new(100, 16);
        a.write_lane_values(0, &[0x1234_5678; 100]);
        a.write_lane_values(1, &[0x9abc_def0; 100]);
        let mut fm = crate::FaultModel::new(0xBEEF, 100);
        for kind in crate::MicroOpKind::ALL {
            fm.set_transient_rate(kind, 1.0);
        }
        a.set_fault_model(Some(fm));
        let mut b = a.clone();

        for op in recipe.ops() {
            op.apply(&mut a);
        }
        b.run_compiled(&compiled);
        assert_eq!(a, b);
        let model = a.fault_model().unwrap();
        assert_eq!(model.site(), 2, "one decision draw + one lane draw per word recipe");
        assert!(model.injected() > 0);
    }

    #[test]
    #[should_panic(expected = "different VRF geometry")]
    fn geometry_mismatch_is_rejected() {
        let instr =
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
        let recipe = build_recipe(ctx(LogicFamily::Nor), &instr).unwrap();
        let compiled = recipe.compile(64, 16);
        let mut vrf = BitPlaneVrf::new(128, 16);
        vrf.run_compiled(&compiled);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn compiling_const_writes_panics_like_the_interpreter() {
        compile(&[MicroOp::Set { out: Plane::Const(true), value: false }], 64, 4);
    }
}
