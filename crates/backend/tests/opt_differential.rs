//! Differential properties for the recipe optimizer (`pum_backend::opt`).
//!
//! The optimizer's contract is that the optimized recipe is *architecturally
//! indistinguishable* from the synthesized template: after executing either
//! form on identically seeded VRFs — any logic family, any lane mask, any
//! operand aliasing the ISA permits — every register plane and the
//! conditional plane are byte-identical. (Scratch planes are explicitly
//! *not* part of the contract: eliminating dead scratch traffic is the
//! point.) On top of exactness, the optimizer must never grow a recipe:
//! `optimized.len() <= template.len()` for every instruction, and the
//! recorded `saved_uops` must equal the difference.

use proptest::prelude::*;
use pum_backend::{build_recipe, BitPlaneVrf, DatapathModel, Plane, Recipe};

use mpu_isa::{BinaryOp, CompareOp, InitValue, Instruction, RegId, UnaryOp};

/// Every instruction the optimizer must preserve, including the aliased
/// `rd == rs` / `rd == rt` forms legal for single-step recipes.
fn instruction_corpus() -> Vec<Instruction> {
    let mut v = Vec::new();
    for op in BinaryOp::ALL {
        v.push(Instruction::Binary { op, rs: RegId(0), rt: RegId(1), rd: RegId(2) });
    }
    // Aliased destinations (multi-step recipes reject aliasing statically,
    // so only the single-pass ops participate).
    for op in [
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::And,
        BinaryOp::Nand,
        BinaryOp::Nor,
        BinaryOp::Or,
        BinaryOp::Xor,
        BinaryOp::Xnor,
        BinaryOp::Max,
        BinaryOp::Min,
    ] {
        v.push(Instruction::Binary { op, rs: RegId(0), rt: RegId(1), rd: RegId(0) });
        v.push(Instruction::Binary { op, rs: RegId(0), rt: RegId(1), rd: RegId(1) });
        v.push(Instruction::Binary { op, rs: RegId(3), rt: RegId(3), rd: RegId(3) });
    }
    for op in UnaryOp::ALL {
        v.push(Instruction::Unary { op, rs: RegId(0), rd: RegId(2) });
        v.push(Instruction::Unary { op, rs: RegId(4), rd: RegId(4) });
    }
    for op in CompareOp::ALL {
        v.push(Instruction::Compare { op, rs: RegId(0), rt: RegId(1) });
        v.push(Instruction::Compare { op, rs: RegId(5), rt: RegId(5) });
    }
    v.push(Instruction::Fuzzy { rs: RegId(0), rt: RegId(1), rd: RegId(2) });
    v.push(Instruction::Cas { rs: RegId(0), rt: RegId(1) });
    v.push(Instruction::Init { value: InitValue::Zero, rd: RegId(6) });
    v.push(Instruction::Init { value: InitValue::One, rd: RegId(6) });
    v
}

fn seeded_vrf(lanes: usize, seed: u64, mask: &[u64]) -> BitPlaneVrf {
    let mut vrf = BitPlaneVrf::new(lanes, 16);
    for reg in 0..16u8 {
        let values: Vec<u64> = (0..lanes as u64)
            .map(|i| (i + 1).wrapping_mul(seed | 1).wrapping_add(u64::from(reg)) ^ (seed >> 9))
            .collect();
        vrf.write_lane_values(reg, &values);
    }
    let words = lanes.div_ceil(64);
    let mask_words: Vec<u64> = (0..words).map(|w| mask[w % mask.len()]).collect();
    vrf.set_plane_words(Plane::Mask, &mask_words);
    vrf
}

fn run(recipe: &Recipe, vrf: &mut BitPlaneVrf) {
    for op in recipe.ops() {
        op.apply(vrf);
    }
}

/// The architecturally observable state: all register planes plus the
/// conditional and mask planes. Scratch contents are internal.
fn arch_state(vrf: &BitPlaneVrf) -> (Vec<Vec<u64>>, Vec<u64>, Vec<u64>) {
    (
        (0..16).map(|r| vrf.read_lane_values(r)).collect(),
        vrf.plane_words(Plane::Cond).to_vec(),
        vrf.plane_words(Plane::Mask).to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Optimized recipes are lane-exact against the unoptimized template
    /// for every instruction, on every substrate, under random data and
    /// random lane masks — and never longer than the template.
    #[test]
    fn optimizer_is_architecturally_exact(
        lanes in prop::sample::select(vec![64usize, 100, 128]),
        seed in any::<u64>(),
        mask in prop::collection::vec(any::<u64>(), 4),
    ) {
        for dp in [
            DatapathModel::racer(),
            DatapathModel::mimdram(),
            DatapathModel::duality_cache(),
        ] {
            for instr in instruction_corpus() {
                let template = build_recipe(dp.recipe_ctx(), &instr).expect("compute instr");
                let optimized = dp.recipe(&instr).expect("compute instr");
                prop_assert!(
                    optimized.len() <= template.len(),
                    "{} on {}: {} uops grew to {}",
                    instr.mnemonic(), dp.name(), template.len(), optimized.len()
                );
                prop_assert_eq!(
                    optimized.saved_uops() as usize,
                    template.len() - optimized.len(),
                    "{} on {}: saved_uops mismatch", instr.mnemonic(), dp.name()
                );
                let mut reference = seeded_vrf(lanes, seed, &mask);
                let mut subject = reference.clone();
                run(&template, &mut reference);
                run(&optimized, &mut subject);
                prop_assert_eq!(
                    arch_state(&reference),
                    arch_state(&subject),
                    "{} on {} lanes={} diverged", instr.mnemonic(), dp.name(), lanes
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Partial rule sets are also exact: any bitmask of enabled rules must
    /// preserve architectural semantics (rules cannot depend on each other
    /// for soundness, only for reach).
    #[test]
    fn every_rule_subset_is_exact(
        rules in 0u32..32,
        seed in any::<u64>(),
        mask in prop::collection::vec(any::<u64>(), 2),
    ) {
        let dp = DatapathModel::racer()
            .with_opt_config(pum_backend::OptConfig::with_rules(rules));
        for instr in [
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            Instruction::Binary { op: BinaryOp::Max, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            Instruction::Binary { op: BinaryOp::Mul, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            Instruction::Compare { op: CompareOp::Lt, rs: RegId(0), rt: RegId(1) },
        ] {
            let template = build_recipe(dp.recipe_ctx(), &instr).expect("compute instr");
            let optimized = dp.recipe(&instr).expect("compute instr");
            prop_assert!(optimized.len() <= template.len());
            let mut reference = seeded_vrf(64, seed, &mask);
            let mut subject = reference.clone();
            run(&template, &mut reference);
            run(&optimized, &mut subject);
            prop_assert_eq!(
                arch_state(&reference),
                arch_state(&subject),
                "{} rules={:#07b} diverged", instr.mnemonic(), rules
            );
        }
    }
}
