//! Differential properties: the in-place engine vs a naive reference.
//!
//! The allocation-free engine in `bitplane.rs` (and its compiled-recipe
//! fast path) must be **byte-identical** to the obvious semantics: stage
//! every result in a freshly allocated buffer, merge through the mask,
//! commit, trim. `RefVrf` below is that naive engine — the shape of the
//! pre-optimization implementation — and these properties pit the two
//! against each other across all logic families, random mask patterns,
//! random micro-op soups, and aliased `out == a` / `out == b` operands.

use proptest::prelude::*;
use pum_backend::{
    build_recipe, BitPlaneVrf, LogicFamily, MicroOp, Plane, Recipe, RecipeCtx, DATA_BITS,
    SCRATCH_PLANES,
};

use mpu_isa::{BinaryOp, CompareOp, InitValue, Instruction, RegId, UnaryOp};

const W: usize = DATA_BITS as usize;

// ----------------------------------------------------------------------
// Naive reference engine: allocate, compute, mask-merge, commit, trim.
// ----------------------------------------------------------------------

struct RefVrf {
    lanes: usize,
    regs: usize,
    words: usize,
    storage: Vec<u64>,
    mask_enabled: bool,
}

impl RefVrf {
    fn new(lanes: usize, regs: usize) -> Self {
        let words = lanes.div_ceil(64);
        let n_planes = regs * W + SCRATCH_PLANES + 4;
        let mut vrf =
            Self { lanes, regs, words, storage: vec![0; n_planes * words], mask_enabled: true };
        vrf.commit(Plane::Mask, vec![!0u64; words]);
        let c1 = vrf.plane_index(Plane::Const(true));
        vrf.storage[c1 * words..(c1 + 1) * words].fill(!0);
        vrf.trim(c1);
        vrf
    }

    fn plane_index(&self, plane: Plane) -> usize {
        let arch = self.regs * W;
        match plane {
            Plane::Reg { reg, bit } => reg as usize * W + bit as usize,
            Plane::Scratch(i) => arch + i as usize,
            Plane::Cond => arch + SCRATCH_PLANES,
            Plane::Mask => arch + SCRATCH_PLANES + 1,
            Plane::Const(false) => arch + SCRATCH_PLANES + 2,
            Plane::Const(true) => arch + SCRATCH_PLANES + 3,
        }
    }

    fn plane(&self, plane: Plane) -> Vec<u64> {
        let i = self.plane_index(plane);
        self.storage[i * self.words..(i + 1) * self.words].to_vec()
    }

    fn trim(&mut self, index: usize) {
        let extra = self.words * 64 - self.lanes;
        if extra > 0 {
            self.storage[index * self.words + self.words - 1] &= !0u64 >> extra;
        }
    }

    /// Staged commit: mask-merge into a fresh buffer, then copy back.
    fn commit(&mut self, out: Plane, mut new: Vec<u64>) {
        assert!(!matches!(out, Plane::Const(_)), "constant planes are read-only");
        let masked = self.mask_enabled && matches!(out, Plane::Reg { .. } | Plane::Cond);
        let i = self.plane_index(out);
        if masked {
            let mask = self.plane(Plane::Mask);
            let old = self.plane(out);
            for w in 0..self.words {
                new[w] = (new[w] & mask[w]) | (old[w] & !mask[w]);
            }
        }
        self.storage[i * self.words..(i + 1) * self.words].copy_from_slice(&new);
        self.trim(i);
    }

    fn apply2(&mut self, a: Plane, b: Plane, out: Plane, f: impl Fn(u64, u64) -> u64) {
        let (a, b) = (self.plane(a), self.plane(b));
        self.commit(out, a.iter().zip(&b).map(|(&x, &y)| f(x, y)).collect());
    }

    fn apply3(
        &mut self,
        a: Plane,
        b: Plane,
        c: Plane,
        out: Plane,
        f: impl Fn(u64, u64, u64) -> u64,
    ) {
        let (a, b, c) = (self.plane(a), self.plane(b), self.plane(c));
        let new = (0..self.words).map(|w| f(a[w], b[w], c[w])).collect();
        self.commit(out, new);
    }

    fn apply(&mut self, op: &MicroOp) {
        let latch = Plane::Scratch(SCRATCH_PLANES as u16 - 1);
        match *op {
            MicroOp::Nor { a, b, out } => self.apply2(a, b, out, |x, y| !(x | y)),
            MicroOp::Tra { a, b, c, out } => {
                self.apply3(a, b, c, out, |x, y, z| (x & y) | (y & z) | (x & z))
            }
            MicroOp::Not { a, out } => self.apply2(a, a, out, |x, _| !x),
            MicroOp::And { a, b, out } => self.apply2(a, b, out, |x, y| x & y),
            MicroOp::Or { a, b, out } => self.apply2(a, b, out, |x, y| x | y),
            MicroOp::Xor { a, b, out } => self.apply2(a, b, out, |x, y| x ^ y),
            MicroOp::FullAdd { a, b, carry, sum } => {
                self.apply3(a, b, carry, latch, |x, y, z| x ^ y ^ z);
                self.apply3(a, b, carry, carry, |x, y, z| (x & y) | (y & z) | (x & z));
                let staged = self.plane(latch);
                self.commit(sum, staged);
            }
            MicroOp::Copy { a, out } => {
                let staged = self.plane(a);
                self.commit(out, staged);
            }
            MicroOp::Set { out, value } => {
                let word = if value { !0u64 } else { 0 };
                self.commit(out, vec![word; self.words]);
            }
            // Independent LUT reference: walk the set table bits and OR the
            // AND minterms (not shared with the engine's `lut3_word`).
            MicroOp::Lut { a, b, c, out, table } => {
                self.apply3(a, b, c, out, |x, y, z| {
                    let mut r = 0u64;
                    for idx in 0..8u8 {
                        if table >> idx & 1 == 1 {
                            r |= (if idx & 1 != 0 { x } else { !x })
                                & (if idx & 2 != 0 { y } else { !y })
                                & (if idx & 4 != 0 { z } else { !z });
                        }
                    }
                    r
                });
            }
            MicroOp::Word { .. } => {
                unimplemented!("word ops are covered by recipe-level differential tests")
            }
        }
    }

    /// Per-bit packing, exactly as the pre-transpose data-load path did.
    fn write_lane_values(&mut self, reg: u8, values: &[u64]) {
        for bit in 0..W as u8 {
            let mut words = vec![0u64; self.words];
            for (lane, &v) in values.iter().enumerate() {
                words[lane / 64] |= ((v >> bit) & 1) << (lane % 64);
            }
            let i = self.plane_index(Plane::Reg { reg, bit });
            self.storage[i * self.words..(i + 1) * self.words].copy_from_slice(&words);
        }
    }

    fn read_lane_values(&self, reg: u8) -> Vec<u64> {
        let mut values = vec![0u64; self.lanes];
        for bit in 0..W as u8 {
            let plane = self.plane(Plane::Reg { reg, bit });
            for (lane, v) in values.iter_mut().enumerate() {
                *v |= ((plane[lane / 64] >> (lane % 64)) & 1) << bit;
            }
        }
        values
    }

    fn set_mask(&mut self, words: Vec<u64>) {
        let i = self.plane_index(Plane::Mask);
        self.storage[i * self.words..(i + 1) * self.words].copy_from_slice(&words);
        self.trim(i);
    }
}

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

fn all_planes(regs: usize) -> Vec<Plane> {
    let mut planes = Vec::new();
    for reg in 0..regs as u8 {
        for bit in 0..W as u8 {
            planes.push(Plane::Reg { reg, bit });
        }
    }
    for i in 0..SCRATCH_PLANES as u16 {
        planes.push(Plane::Scratch(i));
    }
    planes.extend([Plane::Cond, Plane::Mask, Plane::Const(false), Plane::Const(true)]);
    planes
}

/// Asserts every plane of the in-place engine matches the reference.
fn assert_engines_agree(fast: &BitPlaneVrf, reference: &RefVrf, ctx: &str) {
    for plane in all_planes(reference.regs) {
        assert_eq!(
            fast.plane_words(plane),
            reference.plane(plane).as_slice(),
            "{ctx}: plane {plane} diverged"
        );
    }
    assert_eq!(
        fast.mask_lanes(),
        fast.count_lanes_set(Plane::Mask),
        "{ctx}: cached mask popcount is stale"
    );
}

/// `(kind, a, b, c, out2, value)` descriptor, decoded against plane pools.
type OpSpec = (u8, usize, usize, usize, usize, bool);

fn arb_op() -> impl Strategy<Value = OpSpec> {
    (0u8..10, 0usize..1024, 0usize..1024, 0usize..1024, 0usize..1024, prop::bool::ANY)
}

/// Decodes an [`OpSpec`] against the input/output plane pools. Inputs may
/// be any plane (constants included); outputs exclude the read-only
/// constant planes but include mask, cond, and scratch.
fn build_op(spec: OpSpec, regs: usize) -> MicroOp {
    let inputs = all_planes(regs);
    let outs: Vec<Plane> =
        inputs.iter().copied().filter(|p| !matches!(p, Plane::Const(_))).collect();
    let (kind, a, b, c, o2, value) = spec;
    let a = inputs[a % inputs.len()];
    let b = inputs[b % inputs.len()];
    let cp = inputs[c % inputs.len()];
    let out = outs[c % outs.len()];
    let out2 = outs[o2 % outs.len()];
    match kind % 10 {
        0 => MicroOp::Nor { a, b, out: out2 },
        1 => MicroOp::Tra { a, b, c: cp, out: out2 },
        2 => MicroOp::Not { a, out: out2 },
        3 => MicroOp::And { a, b, out: out2 },
        4 => MicroOp::Or { a, b, out: out2 },
        5 => MicroOp::Xor { a, b, out: out2 },
        6 => MicroOp::FullAdd { a, b, carry: out, sum: out2 },
        7 => MicroOp::Copy { a, out: out2 },
        8 => MicroOp::Set { out: out2, value },
        _ => MicroOp::Lut { a, b, c: cp, out: out2, table: (spec.1 ^ spec.2 ^ spec.3) as u8 },
    }
}

/// Builds both engines with identical register data and mask pattern.
fn seeded_pair(lanes: usize, regs: usize, seed: u64, mask: &[u64]) -> (BitPlaneVrf, RefVrf) {
    let mut fast = BitPlaneVrf::new(lanes, regs);
    let mut reference = RefVrf::new(lanes, regs);
    for reg in 0..regs as u8 {
        let values: Vec<u64> = (0..lanes as u64)
            .map(|i| (i + 1).wrapping_mul(seed | 1).wrapping_add(reg as u64) ^ (seed >> 7))
            .collect();
        fast.write_lane_values(reg, &values);
        reference.write_lane_values(reg, &values);
    }
    let words = lanes.div_ceil(64);
    let mask_words: Vec<u64> = (0..words).map(|w| mask[w % mask.len()]).collect();
    fast.set_plane_words(Plane::Mask, &mask_words);
    reference.set_mask(mask_words);
    (fast, reference)
}

fn ctx(family: LogicFamily) -> RecipeCtx {
    RecipeCtx { family, temp_regs: (14, 15), opt: Default::default() }
}

fn family_recipes(family: LogicFamily) -> Vec<(String, Recipe)> {
    let binaries = [
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::And,
        BinaryOp::Nand,
        BinaryOp::Nor,
        BinaryOp::Or,
        BinaryOp::Xor,
        BinaryOp::Xnor,
        BinaryOp::Mul,
    ];
    let mut recipes = Vec::new();
    for op in binaries {
        let instr = Instruction::Binary { op, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
        recipes.push((format!("{op:?}"), build_recipe(ctx(family), &instr).unwrap()));
    }
    for op in [UnaryOp::Inc, UnaryOp::Inv, UnaryOp::LShift, UnaryOp::Mov] {
        let instr = Instruction::Unary { op, rs: RegId(0), rd: RegId(2) };
        recipes.push((format!("{op:?}"), build_recipe(ctx(family), &instr).unwrap()));
    }
    for op in CompareOp::ALL {
        let instr = Instruction::Compare { op, rs: RegId(0), rt: RegId(1) };
        recipes.push((format!("{op:?}"), build_recipe(ctx(family), &instr).unwrap()));
    }
    let init = Instruction::Init { value: InitValue::One, rd: RegId(3) };
    recipes.push(("Init".into(), build_recipe(ctx(family), &init).unwrap()));
    recipes
}

// ----------------------------------------------------------------------
// Properties
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random micro-op soups (including aliased and masked outputs, odd
    /// lane counts) leave both engines with byte-identical planes.
    #[test]
    fn random_op_sequences_match_reference(
        lanes in prop::sample::select(vec![64usize, 65, 100, 128, 130, 512]),
        seed in any::<u64>(),
        mask in prop::collection::vec(any::<u64>(), 8),
        specs in prop::collection::vec(arb_op(), 24),
    ) {
        let regs = 4;
        let (mut fast, mut reference) = seeded_pair(lanes, regs, seed, &mask);
        for (i, &spec) in specs.iter().enumerate() {
            let op = build_op(spec, regs);
            op.apply(&mut fast);
            reference.apply(&op);
            assert_engines_agree(&fast, &reference, &format!("lanes={lanes} op#{i} {op:?}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Explicit aliasing: `out == a` and `out == b` on every two-input op
    /// behave exactly like the staged reference.
    #[test]
    fn aliased_operands_match_reference(
        lanes in prop::sample::select(vec![64usize, 100, 512]),
        seed in any::<u64>(),
        mask in prop::collection::vec(any::<u64>(), 8),
    ) {
        let regs = 2;
        let (mut fast, mut reference) = seeded_pair(lanes, regs, seed, &mask);
        let a = Plane::Scratch(0);
        let b = Plane::Scratch(1);
        let r = Plane::Reg { reg: 0, bit: 7 }; // masked target
        fast.copy_plane(Plane::Reg { reg: 0, bit: 0 }, a);
        reference.apply(&MicroOp::Copy { a: Plane::Reg { reg: 0, bit: 0 }, out: a });
        fast.copy_plane(Plane::Reg { reg: 1, bit: 0 }, b);
        reference.apply(&MicroOp::Copy { a: Plane::Reg { reg: 1, bit: 0 }, out: b });
        let cases = [
            MicroOp::Nor { a, b, out: a },
            MicroOp::Xor { a, b, out: b },
            MicroOp::And { a, b, out: a },
            MicroOp::Or { a, b, out: b },
            MicroOp::Not { a, out: a },
            MicroOp::Nor { a: r, b, out: r },
            MicroOp::Xor { a, b: r, out: r },
            MicroOp::Tra { a, b: a, c: a, out: a },
            MicroOp::FullAdd { a, b, carry: a, sum: b },
            MicroOp::Copy { a, out: a },
            MicroOp::Lut { a, b, c: a, out: a, table: 0x96 },
            MicroOp::Lut { a, b: r, c: b, out: r, table: 0xe8 },
        ];
        for op in cases {
            op.apply(&mut fast);
            reference.apply(&op);
            assert_engines_agree(&fast, &reference, &format!("lanes={lanes} {op:?}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Whole recipes of every logic family — interpreted *and* compiled —
    /// match the reference engine plane-for-plane.
    #[test]
    fn all_logic_families_match_reference(
        family in prop::sample::select(vec![
            LogicFamily::Nor,
            LogicFamily::Maj,
            LogicFamily::Bitline,
            LogicFamily::Lut,
        ]),
        seed in any::<u64>(),
        mask in prop::collection::vec(any::<u64>(), 8),
    ) {
        let (lanes, regs) = (100, 16);
        for (name, recipe) in family_recipes(family) {
            let (mut fast, mut reference) = seeded_pair(lanes, regs, seed, &mask);
            let mut compiled_vrf = fast.clone();
            let compiled = recipe.compile(lanes, regs);
            for op in recipe.ops() {
                op.apply(&mut fast);
                reference.apply(op);
            }
            compiled_vrf.run_compiled(&compiled);
            assert_engines_agree(&fast, &reference, &format!("{family:?}/{name} interpreted"));
            assert_eq!(fast, compiled_vrf, "{family:?}/{name}: compiled form diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `read_lane_values ∘ write_lane_values = id`, including lane counts
    /// that are not multiples of 64 and short writes (implicit zero-pad).
    #[test]
    fn transpose_roundtrip(
        lanes in prop::sample::select(vec![1usize, 7, 63, 64, 65, 100, 127, 128, 130, 257, 512]),
        seed in any::<u64>(),
        fill in 0usize..=100,
    ) {
        let len = lanes * fill / 100;
        let values: Vec<u64> =
            (0..len as u64).map(|i| (i + 1).wrapping_mul(seed | 1)).collect();
        let mut vrf = BitPlaneVrf::new(lanes, 2);
        vrf.write_lane_values(1, &values);
        let mut expect = values.clone();
        expect.resize(lanes, 0);
        prop_assert_eq!(vrf.read_lane_values(1), expect);
    }

    /// The word-level transpose writes exactly the planes the per-bit
    /// packer wrote, and reads back exactly what it read.
    #[test]
    fn transpose_matches_per_bit_reference(
        lanes in prop::sample::select(vec![1usize, 63, 64, 65, 100, 128, 130, 512]),
        seed in any::<u64>(),
    ) {
        let regs = 2;
        let values: Vec<u64> =
            (0..lanes as u64).map(|i| i.wrapping_mul(seed | 1) ^ (seed << 13)).collect();
        let mut fast = BitPlaneVrf::new(lanes, regs);
        let mut reference = RefVrf::new(lanes, regs);
        fast.write_lane_values(0, &values);
        reference.write_lane_values(0, &values);
        for bit in 0..W as u8 {
            let plane = Plane::Reg { reg: 0, bit };
            let expect = reference.plane(plane);
            prop_assert_eq!(fast.plane_words(plane), expect.as_slice(), "bit {}", bit);
        }
        prop_assert_eq!(fast.read_lane_values(0), reference.read_lane_values(0));
    }
}
