//! Property tests: every compute instruction's recipe, executed micro-op by
//! micro-op on the bit-plane substrate, matches the ISA's architectural
//! semantics — for all three logic families, on random data, and under
//! random lane masks.
//!
//! This is the core fidelity claim of the reproduction: the simulator does
//! not shortcut arithmetic; it performs the memory's boolean physics.

use mpu_isa::{BinaryOp, CompareOp, Instruction, RegId, UnaryOp};
use proptest::prelude::*;
use pum_backend::{semantics, BitPlaneVrf, DatapathModel, Plane};

const LANES: usize = 16;

fn models() -> [DatapathModel; 3] {
    [DatapathModel::racer(), DatapathModel::mimdram(), DatapathModel::duality_cache()]
}

fn fresh_vrf(rs: &[u64], rt: &[u64], rd: &[u64]) -> BitPlaneVrf {
    let mut vrf = BitPlaneVrf::new(LANES, 16);
    vrf.write_lane_values(0, rs);
    vrf.write_lane_values(1, rt);
    vrf.write_lane_values(2, rd);
    vrf
}

fn exec(model: &DatapathModel, instr: &Instruction, vrf: &mut BitPlaneVrf) {
    let recipe = model.recipe(instr).expect("compute instruction");
    for op in recipe.ops() {
        op.apply(vrf);
    }
}

fn lane_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), LANES)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cheap binary ops (everything except MUL/MAC/divisions) match
    /// semantics on random data across all backends.
    #[test]
    fn binary_ops_match_semantics(
        rs in lane_values(),
        rt in lane_values(),
        rd in lane_values(),
        op in prop::sample::select(vec![
            BinaryOp::Add, BinaryOp::Sub, BinaryOp::And, BinaryOp::Nand,
            BinaryOp::Nor, BinaryOp::Or, BinaryOp::Xor, BinaryOp::Xnor,
            BinaryOp::Mux, BinaryOp::Max, BinaryOp::Min,
        ]),
    ) {
        let instr = Instruction::Binary { op, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
        for model in models() {
            let mut vrf = fresh_vrf(&rs, &rt, &rd);
            exec(&model, &instr, &mut vrf);
            let got = vrf.read_lane_values(2);
            for lane in 0..LANES {
                prop_assert_eq!(
                    got[lane],
                    semantics::binary(op, rs[lane], rt[lane], rd[lane]),
                    "{} {:?} lane {}", model.name(), op, lane
                );
            }
        }
    }

    /// Unary ops match semantics across all backends.
    #[test]
    fn unary_ops_match_semantics(
        rs in lane_values(),
        op in prop::sample::select(UnaryOp::ALL.to_vec()),
    ) {
        let instr = Instruction::Unary { op, rs: RegId(0), rd: RegId(2) };
        for model in models() {
            let mut vrf = fresh_vrf(&rs, &rs, &rs);
            exec(&model, &instr, &mut vrf);
            let got = vrf.read_lane_values(2);
            for lane in 0..LANES {
                prop_assert_eq!(
                    got[lane],
                    semantics::unary(op, rs[lane]),
                    "{} {:?} lane {}", model.name(), op, lane
                );
            }
        }
    }

    /// Comparisons set the conditional register per lane.
    #[test]
    fn compares_match_semantics(
        rs in lane_values(),
        rt in lane_values(),
        near in prop::bool::ANY,
        op in prop::sample::select(CompareOp::ALL.to_vec()),
    ) {
        // Half the time, force near-equal operands to exercise Eq.
        let rt = if near { rs.clone() } else { rt };
        let instr = Instruction::Compare { op, rs: RegId(0), rt: RegId(1) };
        for model in models() {
            let mut vrf = fresh_vrf(&rs, &rt, &rs);
            exec(&model, &instr, &mut vrf);
            for lane in 0..LANES {
                prop_assert_eq!(
                    vrf.lane_bit(Plane::Cond, lane),
                    semantics::compare(op, rs[lane], rt[lane]),
                    "{} {:?} lane {}", model.name(), op, lane
                );
            }
        }
    }

    /// FUZZY and CAS match semantics.
    #[test]
    fn fuzzy_and_cas_match_semantics(
        rs in lane_values(),
        rt in lane_values(),
        skip in lane_values(),
    ) {
        for model in models() {
            let mut vrf = fresh_vrf(&rs, &rt, &skip);
            exec(&model, &Instruction::Fuzzy { rs: RegId(0), rt: RegId(1), rd: RegId(2) }, &mut vrf);
            for lane in 0..LANES {
                prop_assert_eq!(
                    vrf.lane_bit(Plane::Cond, lane),
                    semantics::fuzzy(rs[lane], rt[lane], skip[lane]),
                    "{} FUZZY lane {}", model.name(), lane
                );
            }
            let mut vrf = fresh_vrf(&rs, &rt, &skip);
            exec(&model, &Instruction::Cas { rs: RegId(0), rt: RegId(1) }, &mut vrf);
            let lo = vrf.read_lane_values(0);
            let hi = vrf.read_lane_values(1);
            for lane in 0..LANES {
                prop_assert_eq!(
                    (lo[lane], hi[lane]),
                    semantics::cas(rs[lane], rt[lane]),
                    "{} CAS lane {}", model.name(), lane
                );
            }
        }
    }

    /// Random lane masks gate architectural writes exactly.
    #[test]
    fn masked_execution_preserves_disabled_lanes(
        rs in lane_values(),
        rt in lane_values(),
        rd in lane_values(),
        mask in any::<u16>(),
    ) {
        let instr = Instruction::Binary {
            op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2),
        };
        for model in models() {
            let mut vrf = fresh_vrf(&rs, &rt, &rd);
            vrf.set_plane_words(Plane::Mask, &[mask as u64]);
            exec(&model, &instr, &mut vrf);
            let got = vrf.read_lane_values(2);
            for lane in 0..LANES {
                let expect = if (mask >> lane) & 1 == 1 {
                    rs[lane].wrapping_add(rt[lane])
                } else {
                    rd[lane]
                };
                prop_assert_eq!(got[lane], expect, "{} lane {}", model.name(), lane);
            }
        }
    }
}

// The expensive recipes (MUL/MAC/QDIV/QRDIV/RDIV) get fewer cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn multiply_and_divide_match_semantics(
        rs in lane_values(),
        rt in lane_values(),
        rd in lane_values(),
        small in prop::bool::ANY,
    ) {
        // Mix tiny divisors (including zero) with arbitrary ones.
        let rt: Vec<u64> = if small { rt.iter().map(|v| v % 7).collect() } else { rt };
        for model in models() {
            for op in [BinaryOp::Mul, BinaryOp::Mac, BinaryOp::QDiv, BinaryOp::RDiv] {
                let instr = Instruction::Binary { op, rs: RegId(0), rt: RegId(1), rd: RegId(2) };
                let mut vrf = fresh_vrf(&rs, &rt, &rd);
                exec(&model, &instr, &mut vrf);
                let got = vrf.read_lane_values(2);
                for lane in 0..LANES {
                    prop_assert_eq!(
                        got[lane],
                        semantics::binary(op, rs[lane], rt[lane], rd[lane]),
                        "{} {:?} lane {}", model.name(), op, lane
                    );
                }
            }
            // QRDIV writes both quotient (rd) and remainder (rt).
            let instr = Instruction::Binary {
                op: BinaryOp::QRDiv, rs: RegId(0), rt: RegId(1), rd: RegId(2),
            };
            let mut vrf = fresh_vrf(&rs, &rt, &rd);
            exec(&model, &instr, &mut vrf);
            let q = vrf.read_lane_values(2);
            let r = vrf.read_lane_values(1);
            for lane in 0..LANES {
                let (eq, er) = semantics::qrdiv(rs[lane], rt[lane]);
                prop_assert_eq!(q[lane], eq, "{} QRDIV q lane {}", model.name(), lane);
                prop_assert_eq!(r[lane], er, "{} QRDIV r lane {}", model.name(), lane);
            }
        }
    }
}
