//! Differential properties for the two non-paper substrates.
//!
//! The pLUTo LUT family and the UPMEM-style word-serial family must be
//! *architecturally indistinguishable* from the proven bit-serial
//! families: the same instruction on the same register file contents
//! leaves the same register/condition state, lane-exact, across random
//! masks, aliased destinations, and lane counts that are not multiples of
//! 64. The optimizer must also be invisible on both new backends
//! (optimizer-on ≡ optimizer-off on all architectural state).

use proptest::prelude::*;
use pum_backend::{
    build_recipe, BitPlaneVrf, DatapathModel, LogicFamily, OptConfig, Plane, RecipeCtx,
};

use mpu_isa::{BinaryOp, CompareOp, Instruction, RegId, UnaryOp};

fn ctx(family: LogicFamily) -> RecipeCtx {
    RecipeCtx { family, temp_regs: (14, 15), opt: Default::default() }
}

/// Compute instructions exercising every word class, including aliased
/// destinations where synthesis permits them (`rd == rs` on commutative
/// and in-place-safe ops; multiply/divide reject aliasing by contract).
fn instrs(alias: bool) -> Vec<Instruction> {
    let rd = if alias { RegId(0) } else { RegId(2) };
    let mut v = vec![
        Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd },
        Instruction::Binary { op: BinaryOp::Sub, rs: RegId(0), rt: RegId(1), rd },
        Instruction::Binary { op: BinaryOp::Xor, rs: RegId(0), rt: RegId(1), rd },
        Instruction::Binary { op: BinaryOp::Nand, rs: RegId(0), rt: RegId(1), rd },
        Instruction::Binary { op: BinaryOp::Max, rs: RegId(0), rt: RegId(1), rd },
        Instruction::Unary { op: UnaryOp::Inc, rs: RegId(0), rd },
        Instruction::Unary { op: UnaryOp::Popc, rs: RegId(0), rd },
        Instruction::Compare { op: CompareOp::Lt, rs: RegId(0), rt: RegId(1) },
        Instruction::Compare { op: CompareOp::Eq, rs: RegId(0), rt: RegId(1) },
        Instruction::Fuzzy { rs: RegId(0), rt: RegId(1), rd },
        Instruction::Cas { rs: RegId(0), rt: RegId(1) },
    ];
    if !alias {
        v.extend([
            // Mux and MAC read `rd` as a third input; Mul/Div reject
            // aliasing by contract — all four run destination-distinct.
            Instruction::Binary { op: BinaryOp::Mux, rs: RegId(0), rt: RegId(1), rd },
            Instruction::Binary { op: BinaryOp::Mul, rs: RegId(0), rt: RegId(1), rd },
            Instruction::Binary { op: BinaryOp::Mac, rs: RegId(0), rt: RegId(1), rd },
            Instruction::Binary { op: BinaryOp::QDiv, rs: RegId(0), rt: RegId(1), rd },
            Instruction::Binary { op: BinaryOp::QRDiv, rs: RegId(0), rt: RegId(1), rd },
        ]);
    }
    v
}

fn seeded_vrf(lanes: usize, seed: u64, mask: &[u64]) -> BitPlaneVrf {
    let mut vrf = BitPlaneVrf::new(lanes, 16);
    for reg in 0..4u8 {
        let values: Vec<u64> = (0..lanes as u64)
            .map(|i| (i + 1).wrapping_mul(seed | 1).wrapping_add(reg as u64) ^ (seed >> 9))
            .collect();
        vrf.write_lane_values(reg, &values);
    }
    let words = lanes.div_ceil(64);
    let mask_words: Vec<u64> = (0..words).map(|w| mask[w % mask.len()]).collect();
    vrf.set_plane_words(Plane::Mask, &mask_words);
    vrf
}

/// Registers + conditional plane: everything architecturally observable.
/// The divide scratch registers `r14`/`r15` hold implementation-defined
/// values (bit-serial restoring division clobbers them; word-serial
/// division does not) and are excluded, matching the conformance oracle.
fn arch_state(vrf: &BitPlaneVrf) -> (Vec<Vec<u64>>, Vec<u64>) {
    let regs = (0..14).map(|r| vrf.read_lane_values(r)).collect();
    (regs, vrf.plane_words(Plane::Cond).to_vec())
}

fn run_family(family: LogicFamily, instr: &Instruction, vrf: &mut BitPlaneVrf) {
    let recipe = build_recipe(ctx(family), instr).expect("compute instruction");
    for op in recipe.ops() {
        op.apply(vrf);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LUT-query recipes and word-serial recipes leave the same
    /// architectural state as NOR and MAJ recipes, lane-exact, across
    /// random masks, aliasing, and non-×64 lane counts.
    #[test]
    fn new_families_match_proven_families(
        lanes in prop::sample::select(vec![64usize, 65, 100, 127, 128, 130, 512]),
        seed in any::<u64>(),
        mask in prop::collection::vec(any::<u64>(), 8),
        alias in prop::bool::ANY,
    ) {
        for instr in instrs(alias) {
            let mut reference = seeded_vrf(lanes, seed, &mask);
            run_family(LogicFamily::Nor, &instr, &mut reference);
            let expect = arch_state(&reference);
            for family in [LogicFamily::Maj, LogicFamily::Lut, LogicFamily::WordSerial] {
                let mut vrf = seeded_vrf(lanes, seed, &mask);
                run_family(family, &instr, &mut vrf);
                prop_assert_eq!(
                    &arch_state(&vrf),
                    &expect,
                    "{:?} diverged from NOR on {} (lanes={}, alias={})",
                    family,
                    instr.mnemonic(),
                    lanes,
                    alias
                );
            }
        }
    }

    /// The optimizer is architecturally invisible on both new backends.
    #[test]
    fn optimizer_is_invisible_on_new_backends(
        lanes_sel in prop::sample::select(vec![0usize, 1]),
        seed in any::<u64>(),
        mask in prop::collection::vec(any::<u64>(), 8),
    ) {
        for dp in [DatapathModel::pluto(), DatapathModel::dpu()] {
            let g = dp.geometry();
            // Native geometry and a deliberately odd lane count.
            let lanes = [g.lanes_per_vrf, 100][lanes_sel];
            let off = dp.clone().with_opt_config(OptConfig::disabled());
            for instr in instrs(false) {
                let optimized = dp.recipe(&instr).expect("compute instruction");
                let template = off.recipe(&instr).expect("compute instruction");
                let mut a = seeded_vrf(lanes, seed, &mask);
                let mut b = seeded_vrf(lanes, seed, &mask);
                for op in optimized.ops() {
                    op.apply(&mut a);
                }
                for op in template.ops() {
                    op.apply(&mut b);
                }
                prop_assert_eq!(
                    arch_state(&a),
                    arch_state(&b),
                    "{}: optimizer changed architectural state on {}",
                    dp.name(),
                    instr.mnemonic()
                );
            }
        }
    }
}
