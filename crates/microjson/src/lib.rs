//! A minimal, dependency-free JSON value type with a recursive-descent
//! parser and a deterministic writer.
//!
//! The workspace has no network access, so heavyweight JSON crates are
//! out of reach; this crate covers exactly what the observability tooling
//! needs — parsing trace exports and benchmark baselines, and writing
//! them back deterministically (object keys keep insertion order, so a
//! parse → write round trip is stable).
//!
//! Not a general-purpose JSON library: numbers are `f64` (like
//! JavaScript), and `\uXXXX` escapes outside the basic multilingual plane
//! must come as surrogate pairs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first offending byte.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, when this is a number with an exact
    /// integral value in `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { pos: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("invalid number"))
    }
}

impl fmt::Display for Value {
    /// Compact serialization; objects keep insertion order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(Value::parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Obj(vec![])));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Value::parse("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("A😀"));
        assert!(Value::parse("\"\\ud83d\"").is_err(), "unpaired surrogate");
    }

    #[test]
    fn display_round_trips() {
        let text = r#"{"counters":{"cycles":12345,"rate":0.5},"names":["a","b\"c"],"ok":true,"none":null}"#;
        let v = Value::parse(text).unwrap();
        let written = v.to_string();
        assert_eq!(written, text);
        assert_eq!(Value::parse(&written).unwrap(), v);
    }

    #[test]
    fn integer_accessor_guards_range() {
        assert_eq!(Value::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Value::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Value::parse("1.5").unwrap().as_u64(), None);
    }
}
