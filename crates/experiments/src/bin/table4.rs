//! Table IV: end-to-end application execution steps on the MPU, with the
//! lines-of-code comparison between hand-written MPU assembly (our lowered
//! ISA instruction count) and ezpim source statements.

use experiments::{parse_jobs, print_table, SEED};
use mastodon::SimConfig;
use pum_backend::DatapathKind;
use workloads::apps::all_apps;
use workloads::{effective_jobs, parallel_map};

fn main() {
    let cfg = SimConfig::mpu(DatapathKind::Racer);
    let apps = all_apps();
    let rows: Vec<Vec<String>> =
        parallel_map(apps.iter().collect(), effective_jobs(parse_jobs()), |app| {
            let t4 = app.table4();
            let built = app.build(&cfg, app.default_mpus(), SEED);
            vec![
                t4.name.to_string(),
                t4.compute_steps.to_string(),
                t4.collectives.to_string(),
                format!("{} (paper {})", app.default_mpus(), t4.paper_mpus),
                built.isa_instructions.to_string(),
                built.ezpim_statements.to_string(),
            ]
        });
    print_table(
        "Table IV — end-to-end applications",
        &[
            "application",
            "compute steps",
            "collective commun.",
            "MPUs",
            "LoC baseline (ISA)",
            "LoC ezpim",
        ],
        &rows,
    );
    println!(
        "\nPaper reference LoC (baseline -> ezpim): LLMEncode 15290 -> 1160, \
         BlackScholes 1059 -> 383, EditDistance 5428 -> 120."
    );
}
