//! `load_gen` — offered-load generator and latency reporter for the
//! simulation service.
//!
//! ```text
//! load_gen [--jobs N] [--tenants N] [--workers N] [--poison-frac F]
//!          [--fault-rate R] [--seconds S] [--seed N] [--out FILE]
//! ```
//!
//! Submits a seeded mixed workload as fast as admission control allows
//! (typed shedding is retried briefly — backpressure, not failure) for
//! `--seconds`, or until `--jobs` have been offered, whichever comes
//! first. Reports completion latency percentiles (p50/p99/p999 of
//! submit-to-outcome wall time), throughput, and the outcome census as a
//! `microjson` document — and proves the report round-trips through the
//! parser before printing it.

use experiments::chaos::{
    bounded_wait_all, gen_job, percentile, roomy_limits, submit_retrying, MixConfig,
};
use microjson::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;
use service::proto::hex;
use service::{Service, ServiceConfig};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(h) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else {
        text.parse().ok()
    }
}

const USAGE: &str = "usage: load_gen [--jobs N] [--tenants N] [--workers N] [--poison-frac F] \
[--fault-rate R] [--seconds S] [--seed N] [--out FILE]";

fn main() {
    let mut jobs = 200u64;
    let mut workers = 4usize;
    let mut seconds = 30u64;
    let mut seed = 0x10ADu64;
    let mut mix = MixConfig { deadline_frac: 0.0, ..Default::default() };
    let mut out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs an argument\n{USAGE}");
                std::process::exit(2);
            })
        };
        let bad = |name: &str| -> ! {
            eprintln!("{name} needs a numeric argument\n{USAGE}");
            std::process::exit(2);
        };
        match arg.as_str() {
            "--jobs" => jobs = parse_u64(&value("--jobs")).unwrap_or_else(|| bad("--jobs")),
            "--tenants" => {
                mix.tenants =
                    parse_u64(&value("--tenants")).unwrap_or_else(|| bad("--tenants")) as usize;
            }
            "--workers" => {
                workers =
                    parse_u64(&value("--workers")).unwrap_or_else(|| bad("--workers")) as usize;
            }
            "--poison-frac" => {
                mix.poison_frac =
                    value("--poison-frac").parse().unwrap_or_else(|_| bad("--poison-frac"));
            }
            "--fault-rate" => {
                mix.fault_rate =
                    value("--fault-rate").parse().unwrap_or_else(|_| bad("--fault-rate"));
            }
            "--seconds" => {
                seconds = parse_u64(&value("--seconds")).unwrap_or_else(|| bad("--seconds"));
            }
            "--seed" => seed = parse_u64(&value("--seed")).unwrap_or_else(|| bad("--seed")),
            "--out" => out = Some(value("--out")),
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let service = Service::start(ServiceConfig {
        workers,
        queue_capacity: 128,
        tenant_quota: 32,
        limits: roomy_limits(),
        seed,
        ..Default::default()
    });

    let mut rng = StdRng::seed_from_u64(seed);
    let started = Instant::now();
    let budget = Duration::from_secs(seconds);
    let mut ids = Vec::new();
    let mut offered = 0u64;
    let mut rejected: BTreeMap<&'static str, u64> = BTreeMap::new();

    while offered < jobs && started.elapsed() < budget {
        let job = gen_job(&mut rng, offered, &mix);
        offered += 1;
        match submit_retrying(&service, &job.spec, 100, Duration::from_millis(2)) {
            Ok(id) => ids.push(id),
            Err(e) => *rejected.entry(e.kind()).or_insert(0) += 1,
        }
    }
    let offered_secs = started.elapsed().as_secs_f64();

    let (outcomes, hung) = bounded_wait_all(&service, &ids, Duration::from_secs(600));
    let drained_secs = started.elapsed().as_secs_f64();
    service.shutdown();

    let mut latencies: Vec<u64> = Vec::new();
    let mut census: BTreeMap<String, u64> = BTreeMap::new();
    let mut completed = 0u64;
    for (_, outcome) in &outcomes {
        let tag = match &outcome.result {
            Ok(_) => {
                completed += 1;
                latencies.push(outcome.wall_ms);
                "ok".to_string()
            }
            Err(e) => e.kind().to_string(),
        };
        *census.entry(tag).or_insert(0) += 1;
    }
    latencies.sort_unstable();

    let report = Value::Obj(vec![
        ("jobs".into(), Value::Num(jobs as f64)),
        ("seed".into(), hex(seed)),
        ("tenants".into(), Value::Num(mix.tenants as f64)),
        ("workers".into(), Value::Num(workers as f64)),
        ("poison_frac".into(), Value::Num(mix.poison_frac)),
        ("fault_rate".into(), Value::Num(mix.fault_rate)),
        ("seconds".into(), Value::Num(seconds as f64)),
        ("offered".into(), Value::Num(offered as f64)),
        ("admitted".into(), Value::Num(ids.len() as f64)),
        (
            "rejected".into(),
            Value::Obj(
                rejected.iter().map(|(k, v)| ((*k).into(), Value::Num(*v as f64))).collect(),
            ),
        ),
        (
            "outcomes".into(),
            Value::Obj(census.iter().map(|(k, v)| (k.clone(), Value::Num(*v as f64))).collect()),
        ),
        ("hangs".into(), Value::Num(hung.len() as f64)),
        ("completed".into(), Value::Num(completed as f64)),
        ("p50_ms".into(), Value::Num(percentile(&latencies, 0.50) as f64)),
        ("p99_ms".into(), Value::Num(percentile(&latencies, 0.99) as f64)),
        ("p999_ms".into(), Value::Num(percentile(&latencies, 0.999) as f64)),
        ("offered_seconds".into(), Value::Num(offered_secs)),
        ("drained_seconds".into(), Value::Num(drained_secs)),
        (
            "throughput_jobs_per_sec".into(),
            Value::Num(if drained_secs > 0.0 { outcomes.len() as f64 / drained_secs } else { 0.0 }),
        ),
    ]);

    // Schema round-trip: the printed report must parse back to itself.
    let rendered = report.to_string();
    let reparsed = Value::parse(&rendered).expect("load_gen report must be valid microjson");
    assert_eq!(reparsed, report, "load_gen report does not round-trip");

    println!("{rendered}");
    if let Some(path) = out {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }
    if !hung.is_empty() {
        eprintln!("load_gen: {} jobs never drained", hung.len());
        std::process::exit(1);
    }
}
