//! `prim_suite` — per-substrate cycle/energy table for the PrIM workload
//! suite (histogram, SpMV, gather/scatter, select, hash-join,
//! prefix-scan).
//!
//! ```text
//! prim_suite [--backend racer|mimdram|dualitycache|pluto|dpu|all]
//!            [--n 4096] [--seed 42] [--assert] [--out PATH]
//! ```
//!
//! Every run lane-verifies against the kernel's golden model inside the
//! workloads harness. `--assert` compares the rendered table (default
//! parameters only) against the pinned `golden/prim_suite.txt` and fails
//! on drift — the CI table check. `--out` additionally writes the table
//! to a file (the report artifact CI uploads on failure).

use experiments::{parse_backend, prim_suite, render_prim_suite, BACKEND_ORDER};
use pum_backend::DatapathKind;
use std::process::ExitCode;

/// Default problem size, matching the golden snapshot.
const DEFAULT_N: u64 = 1 << 12;
/// Default seed, matching the golden snapshot.
const DEFAULT_SEED: u64 = 42;

struct Args {
    backends: Vec<DatapathKind>,
    n: u64,
    seed: u64,
    assert: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        backends: BACKEND_ORDER.to_vec(),
        n: DEFAULT_N,
        seed: DEFAULT_SEED,
        assert: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--backend" => {
                let name = value("--backend")?;
                parsed.backends = if name == "all" {
                    BACKEND_ORDER.to_vec()
                } else {
                    vec![parse_backend(&name)?]
                };
            }
            "--n" => parsed.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--seed" => {
                parsed.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--assert" => parsed.assert = true,
            "--out" => parsed.out = Some(value("--out")?),
            "--help" | "-h" => {
                return Err("usage: prim_suite [--backend racer|mimdram|dualitycache|pluto|dpu\
                            |all] [--n N] [--seed S] [--assert] [--out PATH]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let rows = match prim_suite(&args.backends, args.n, args.seed) {
        Ok(rows) => rows,
        Err(msg) => {
            eprintln!("prim_suite: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let table = render_prim_suite(&rows, args.n, args.seed);
    print!("{table}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &table) {
            eprintln!("prim_suite: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if args.assert {
        let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/prim_suite.txt");
        let want = match std::fs::read_to_string(golden) {
            Ok(want) => want,
            Err(e) => {
                eprintln!(
                    "prim_suite: missing golden table {golden}: {e} \
                     (bless with MPU_BLESS=1 cargo test -p experiments prim_suite)"
                );
                return ExitCode::FAILURE;
            }
        };
        if table != want {
            eprintln!(
                "prim_suite: table drifted from {golden}; if intentional, re-bless with \
                 MPU_BLESS=1 cargo test -p experiments prim_suite"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("prim_suite: table matches the golden snapshot");
    }
    ExitCode::SUCCESS
}
