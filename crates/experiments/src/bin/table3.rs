//! Table III: system parameters for the three MPU configurations.

use experiments::print_table;
use mastodon::SimConfig;
use pum_backend::DatapathKind;

fn main() {
    let configs = [
        SimConfig::mpu(DatapathKind::Racer),
        SimConfig::mpu(DatapathKind::Mimdram),
        SimConfig::mpu(DatapathKind::DualityCache),
    ];
    let keys: Vec<String> = configs[0].table3_rows().iter().map(|(k, _)| k.clone()).collect();
    let rows: Vec<Vec<String>> = keys
        .iter()
        .map(|key| {
            let mut row = vec![key.clone()];
            for cfg in &configs {
                let value = cfg
                    .table3_rows()
                    .into_iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .unwrap_or_default();
                row.push(value);
            }
            row
        })
        .collect();
    print_table(
        "Table III — system parameters",
        &["parameter", "MPU:RACER", "MPU:MIMDRAM", "MPU:DualityCache"],
        &rows,
    );
    println!(
        "\nHost CPU (Baseline offload target): 16-core x86 OoO (Xeon Gold 6544Y-class), \
         8 GB DDR3L."
    );
}
