//! `recipe_opt` — per-rule attribution table for the recipe optimizer.
//!
//! ```text
//! recipe_opt [--backend racer|mimdram|dualitycache|all] [--n 4096] [--seed 42]
//! ```
//!
//! Runs every kernel twice per substrate — optimizer off, then the default
//! configuration — and prints one row per pair: dynamic micro-ops issued
//! under each configuration, the saved fraction, the cycle and energy
//! deltas, and per-rule `fires/removed-uops` counters harvested from the
//! run's recipe pool (static, per synthesized recipe). A `TOTAL` row per
//! substrate gives the aggregate payoff. The same table is pinned by the
//! `recipe_opt_golden` snapshot test.

use experiments::{opt_attribution, parse_backend, render_opt_attribution, BACKEND_ORDER};
use pum_backend::DatapathKind;
use std::process::ExitCode;

struct Args {
    backends: Vec<DatapathKind>,
    n: u64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut backends: Vec<DatapathKind> = BACKEND_ORDER.to_vec();
    let mut n = 1 << 12;
    let mut seed = 42;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--backend" => {
                let name = value("--backend")?;
                backends = if name == "all" {
                    BACKEND_ORDER.to_vec()
                } else {
                    vec![parse_backend(&name)?]
                };
            }
            "--n" => {
                n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?;
            }
            "--seed" => {
                seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: recipe_opt [--backend racer|mimdram|dualitycache|all] \
                            [--n N] [--seed S]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(Args { backends, n, seed })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match opt_attribution(&args.backends, args.n, args.seed) {
        Ok(rows) => {
            print!("{}", render_opt_attribution(&rows, args.n, args.seed));
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("recipe_opt: {msg}");
            ExitCode::FAILURE
        }
    }
}
