//! Figure 1: dynamic-loop execution-time breakdown for RACER as the number
//! of back-to-back CMPEQ loop-body instructions grows — the motivating
//! "even rare CPU offloads destroy performance" study.
//!
//! For each body size we build the same dynamic loop with ezpim, run it on
//! RACER in Baseline mode (control flow offloaded to the host CPU) and in
//! MPU mode (the hypothetical CPU-free PUM the paper compares against),
//! and report the slowdown plus the offload share of Baseline time.

use experiments::{fmt_ratio, fmt_time_ns, parse_jobs, print_table, SEED};
use ezpim::{Cond, EzProgram};
use mastodon::{run_single, SimConfig, Stats};
use mpu_isa::RegId;
use pum_backend::DatapathKind;
use workloads::{effective_jobs, parallel_map};

fn r(i: u16) -> RegId {
    RegId(i)
}

/// Builds a dynamic loop whose body is `body_cmps` back-to-back CMPEQs.
fn loop_program(body_cmps: usize) -> mpu_isa::Program {
    let mut ez = EzProgram::new();
    ez.ensemble(&[(0, 0)], |b| {
        b.while_loop(Cond::Gt(r(0), r(1)), |b| {
            b.repeat(body_cmps, |b| {
                b.cmp(Cond::Eq(r(2), r(3)));
            });
            b.sub(r(0), r(4), r(0));
        });
    })
    .expect("loop body");
    ez.assemble().expect("fig01 program")
}

fn run(mode_cfg: &SimConfig, body: usize, iterations: u64) -> Stats {
    let program = loop_program(body);
    let lanes = mode_cfg.datapath.geometry().lanes_per_vrf;
    let (stats, _) = run_single(
        mode_cfg.clone(),
        &program,
        &[
            ((0, 0, 0), vec![iterations; lanes]),
            ((0, 0, 1), vec![0; lanes]),
            ((0, 0, 2), vec![7; lanes]),
            ((0, 0, 3), vec![7; lanes]),
            ((0, 0, 4), vec![1; lanes]),
        ],
    )
    .expect("fig01 run");
    stats
}

fn main() {
    let _ = SEED;
    let mpu_cfg = SimConfig::mpu(DatapathKind::Racer);
    let base_cfg = SimConfig::baseline(DatapathKind::Racer);
    let iterations = 8;

    // Both modes of every body size fan out across worker threads;
    // parallel_map returns results in input order, so rows match the
    // serial sweep exactly.
    let bodies = [1usize, 2, 5, 10, 20, 40, 80];
    let runs = parallel_map(
        bodies.iter().flat_map(|&b| [(&mpu_cfg, b), (&base_cfg, b)]).collect(),
        effective_jobs(parse_jobs()),
        |(cfg, body)| run(cfg, body, iterations),
    );

    let mut rows = Vec::new();
    for (i, body) in bodies.into_iter().enumerate() {
        let (mpu, base) = (&runs[2 * i], &runs[2 * i + 1]);
        let slowdown = base.cycles as f64 / mpu.cycles as f64;
        let offload_share = base.offload_cycles as f64 / base.cycles as f64;
        rows.push(vec![
            body.to_string(),
            fmt_time_ns(mpu.cycles as f64),
            fmt_time_ns(base.cycles as f64),
            format!("{:.1}%", 100.0 * offload_share),
            fmt_ratio(slowdown),
        ]);
    }
    print_table(
        "Fig. 1 — RACER dynamic loop: Baseline (CPU offload) vs CPU-free PUM",
        &["body CMPEQs", "PUM-only time", "Baseline time", "offload share", "slowdown"],
        &rows,
    );
    println!(
        "\nPaper reference: ~10.1x slowdown at 1 control per 80 instructions; \
         30-40x for typical bodies."
    );
}
