//! Figure 13: speedup (top) and energy savings (bottom) of Baseline:X and
//! MPU:X over the GPU, X ∈ {RACER, MIMDRAM}, for all 28 kernels; plus the
//! paper's footnote on MPU:DualityCache.

use experiments::{
    fmt_ratio, geomean, kernel_matrix_jobs, parse_jobs, print_table, KERNEL_N, SEED,
};
use pum_backend::DatapathKind;

fn main() {
    let jobs = parse_jobs();
    let racer = kernel_matrix_jobs(DatapathKind::Racer, KERNEL_N, SEED, jobs);
    let mimdram = kernel_matrix_jobs(DatapathKind::Mimdram, KERNEL_N, SEED, jobs);
    let dc = kernel_matrix_jobs(DatapathKind::DualityCache, KERNEL_N, SEED, jobs);

    for metric in ["speedup", "energy savings"] {
        let mut rows = Vec::new();
        for i in 0..racer.len() {
            let pick = |r: &experiments::KernelComparison, who: &str| match (metric, who) {
                ("speedup", "base") => r.baseline_speedup_vs_gpu(),
                ("speedup", _) => r.mpu_speedup_vs_gpu(),
                (_, "base") => r.baseline_energy_savings_vs_gpu(),
                (_, _) => r.mpu_energy_savings_vs_gpu(),
            };
            rows.push(vec![
                racer[i].kernel.to_string(),
                fmt_ratio(pick(&racer[i], "base")),
                fmt_ratio(pick(&racer[i], "mpu")),
                fmt_ratio(pick(&mimdram[i], "base")),
                fmt_ratio(pick(&mimdram[i], "mpu")),
            ]);
        }
        let mean = |m: &[experiments::KernelComparison], who: &str| {
            fmt_ratio(geomean(m.iter().map(|r| match (metric, who) {
                ("speedup", "base") => r.baseline_speedup_vs_gpu(),
                ("speedup", _) => r.mpu_speedup_vs_gpu(),
                (_, "base") => r.baseline_energy_savings_vs_gpu(),
                (_, _) => r.mpu_energy_savings_vs_gpu(),
            })))
        };
        rows.push(vec![
            "MEAN(all 21)".to_string(),
            mean(&racer, "base"),
            mean(&racer, "mpu"),
            mean(&mimdram, "base"),
            mean(&mimdram, "mpu"),
        ]);
        print_table(
            &format!("Fig. 13 — {metric} vs GPU (RTX 4090 model), log-scale data"),
            &["kernel", "Base:RACER", "MPU:RACER", "Base:MIMDRAM", "MPU:MIMDRAM"],
            &rows,
        );
    }

    let dc_speed = geomean(dc.iter().map(|r| r.mpu_speedup_vs_gpu()));
    let dc_energy = geomean(dc.iter().map(|r| r.mpu_energy_savings_vs_gpu()));
    println!(
        "\nMPU:DualityCache vs GPU (not plotted in the paper): {} speedup, {} energy \
         savings (paper: 1.6x / 3.6x, capacity-limited).",
        fmt_ratio(dc_speed),
        fmt_ratio(dc_energy)
    );
    println!(
        "Paper reference: MPU:RACER 67x / 47x and MPU:MIMDRAM 156x / 35x mean \
         speedup / energy savings over the GPU."
    );
}
