//! `service_chaos` — seeded chaos soak for the resilient simulation
//! service.
//!
//! ```text
//! service_chaos [--jobs N] [--workers N] [--tenants N] [--seed N]
//!               [--poison-frac F] [--fault-frac F] [--fault-rate R]
//!               [--deadline-frac F] [--slow-frac F] [--kill-every N]
//!               [--timeout-secs S] [--out FILE] [--assert]
//! ```
//!
//! Drives a mixed multi-tenant workload (straight-line compute, slow
//! boundary-crossing loops, poison panics, fault-injected runs, tight
//! deadlines, random priorities, all five backends) through one service
//! while periodically chaos-killing workers, then audits the wreckage:
//!
//! * no crashes — the process is alive to print the report;
//! * no hangs — every admitted job reaches a terminal outcome within the
//!   global timeout;
//! * every outcome is *typed* — success, `worker_panic`,
//!   `deadline_exceeded`, `fault_budget_exhausted`, ... — and consistent
//!   with what the generator built the job to be;
//! * every successful job's outputs are lane-exact against the
//!   word-level reference model;
//! * the worker pool healed — workers alive equals the configured pool
//!   despite the kills.
//!
//! `--assert` turns the audit into the exit code for CI.

use experiments::chaos::{
    bounded_wait_all, gen_job, roomy_limits, submit_retrying, GenJob, JobKind, MixConfig,
};
use microjson::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;
use service::proto::{health_to_json, hex};
use service::{JobError, Service, ServiceConfig};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(h) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else {
        text.parse().ok()
    }
}

const USAGE: &str = "usage: service_chaos [--jobs N] [--workers N] [--tenants N] [--seed N] \
[--poison-frac F] [--fault-frac F] [--fault-rate R] [--deadline-frac F] [--slow-frac F] \
[--kill-every N] [--timeout-secs S] [--out FILE] [--assert]";

fn main() {
    let mut jobs = 500u64;
    let mut workers = 4usize;
    let mut seed = 0xC4405u64;
    let mut kill_every = 50u64;
    let mut timeout_secs = 600u64;
    let mut mix = MixConfig::default();
    let mut out: Option<String> = None;
    let mut assert_audit = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs an argument\n{USAGE}");
                std::process::exit(2);
            })
        };
        let bad = |name: &str| -> ! {
            eprintln!("{name} needs a numeric argument\n{USAGE}");
            std::process::exit(2);
        };
        match arg.as_str() {
            "--jobs" => jobs = parse_u64(&value("--jobs")).unwrap_or_else(|| bad("--jobs")),
            "--workers" => {
                workers =
                    parse_u64(&value("--workers")).unwrap_or_else(|| bad("--workers")) as usize;
            }
            "--tenants" => {
                mix.tenants =
                    parse_u64(&value("--tenants")).unwrap_or_else(|| bad("--tenants")) as usize;
            }
            "--seed" => seed = parse_u64(&value("--seed")).unwrap_or_else(|| bad("--seed")),
            "--poison-frac" => {
                mix.poison_frac =
                    value("--poison-frac").parse().unwrap_or_else(|_| bad("--poison-frac"));
            }
            "--fault-frac" => {
                mix.fault_frac =
                    value("--fault-frac").parse().unwrap_or_else(|_| bad("--fault-frac"));
            }
            "--fault-rate" => {
                mix.fault_rate =
                    value("--fault-rate").parse().unwrap_or_else(|_| bad("--fault-rate"));
            }
            "--deadline-frac" => {
                mix.deadline_frac =
                    value("--deadline-frac").parse().unwrap_or_else(|_| bad("--deadline-frac"));
            }
            "--slow-frac" => {
                mix.slow_frac = value("--slow-frac").parse().unwrap_or_else(|_| bad("--slow-frac"));
            }
            "--kill-every" => {
                kill_every =
                    parse_u64(&value("--kill-every")).unwrap_or_else(|| bad("--kill-every"));
            }
            "--timeout-secs" => {
                timeout_secs =
                    parse_u64(&value("--timeout-secs")).unwrap_or_else(|| bad("--timeout-secs"));
            }
            "--out" => out = Some(value("--out")),
            "--assert" => assert_audit = true,
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let service = Service::start(ServiceConfig {
        workers,
        queue_capacity: 128,
        tenant_quota: 32,
        limits: roomy_limits(),
        seed,
        ..Default::default()
    });

    let mut rng = StdRng::seed_from_u64(seed);
    let started = Instant::now();
    let mut submitted: Vec<(u64, GenJob)> = Vec::new();
    let mut rejected: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut kills = 0u64;

    for i in 0..jobs {
        if kill_every > 0 && i > 0 && i % kill_every == 0 {
            service.chaos_kill_worker();
            kills += 1;
        }
        let job = gen_job(&mut rng, i, &mix);
        match submit_retrying(&service, &job.spec, 500, Duration::from_millis(2)) {
            Ok(id) => submitted.push((id, job)),
            Err(e) => *rejected.entry(e.kind()).or_insert(0) += 1,
        }
    }

    let ids: Vec<u64> = submitted.iter().map(|(id, _)| *id).collect();
    let (outcomes, hung) = bounded_wait_all(&service, &ids, Duration::from_secs(timeout_secs));
    let wall_ms = started.elapsed().as_millis() as u64;

    // --- Audit ---
    let by_id: BTreeMap<u64, &GenJob> = submitted.iter().map(|(id, j)| (*id, j)).collect();
    let mut outcome_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut kind_violations: Vec<String> = Vec::new();
    let mut oracle_mismatches: Vec<String> = Vec::new();
    let mut preemptions = 0u64;
    let mut retries_spent = 0u64;

    for (id, outcome) in &outcomes {
        let job = by_id[id];
        preemptions += u64::from(outcome.preemptions);
        retries_spent += u64::from(outcome.attempts.saturating_sub(1));
        let tag = match &outcome.result {
            Ok(_) => "ok".to_string(),
            Err(e) => e.kind().to_string(),
        };
        *outcome_counts.entry(tag).or_insert(0) += 1;

        match (&job.kind, &outcome.result) {
            // Compute and slow jobs must succeed (worker-loss reruns are
            // allowed to consume attempts, but the job must land).
            (JobKind::Compute | JobKind::Slow, Ok(result)) => {
                let expected = job.expected.as_ref().expect("oracle ran");
                for (got, want) in result.outputs.iter().zip(expected) {
                    let lanes = got.values.len().min(want.len());
                    if got.values[..lanes] != want[..lanes] {
                        oracle_mismatches.push(format!(
                            "job {id} ({}): r{} lanes diverged from refmodel",
                            job.kind.label(),
                            got.reg
                        ));
                    }
                }
            }
            (JobKind::Compute | JobKind::Slow, Err(e)) => {
                kind_violations.push(format!("job {id} ({}): {e}", job.kind.label()));
            }
            (JobKind::Poison, Err(JobError::WorkerPanic { .. })) => {}
            (JobKind::Poison, other) => {
                kind_violations.push(format!("job {id} (poison): ended {other:?}"));
            }
            (JobKind::Faulty, Ok(result)) => {
                let expected = job.expected.as_ref().expect("oracle ran");
                for (got, want) in result.outputs.iter().zip(expected) {
                    let lanes = got.values.len().min(want.len());
                    if got.values[..lanes] != want[..lanes] {
                        oracle_mismatches.push(format!(
                            "job {id} (faulty): r{} silently corrupted vs refmodel",
                            got.reg
                        ));
                    }
                }
            }
            (JobKind::Faulty, Err(JobError::FaultBudgetExhausted { .. })) => {}
            (JobKind::Faulty, Err(e)) => {
                kind_violations.push(format!("job {id} (faulty): untyped end {e}"));
            }
            (JobKind::Deadline, Ok(_) | Err(JobError::DeadlineExceeded)) => {}
            (JobKind::Deadline, Err(e)) => {
                kind_violations.push(format!("job {id} (deadline): {e}"));
            }
        }
    }

    let health = service.health();
    service.shutdown();

    let report = Value::Obj(vec![
        ("jobs".into(), Value::Num(jobs as f64)),
        ("seed".into(), hex(seed)),
        ("workers".into(), Value::Num(workers as f64)),
        ("kills".into(), Value::Num(kills as f64)),
        ("admitted".into(), Value::Num(submitted.len() as f64)),
        (
            "rejected".into(),
            Value::Obj(
                rejected.iter().map(|(k, v)| ((*k).into(), Value::Num(*v as f64))).collect(),
            ),
        ),
        (
            "outcomes".into(),
            Value::Obj(
                outcome_counts.iter().map(|(k, v)| (k.clone(), Value::Num(*v as f64))).collect(),
            ),
        ),
        ("hangs".into(), Value::Num(hung.len() as f64)),
        ("oracle_mismatches".into(), Value::Num(oracle_mismatches.len() as f64)),
        ("kind_violations".into(), Value::Num(kind_violations.len() as f64)),
        ("preemptions".into(), Value::Num(preemptions as f64)),
        ("retries_spent".into(), Value::Num(retries_spent as f64)),
        ("wall_ms".into(), Value::Num(wall_ms as f64)),
        ("health".into(), health_to_json(&health)),
    ]);
    let rendered = report.to_string();
    println!("{rendered}");
    if let Some(path) = out {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }

    let mut failures: Vec<String> = Vec::new();
    if !hung.is_empty() {
        failures.push(format!("{} jobs never reached a terminal outcome: {hung:?}", hung.len()));
    }
    if outcomes.len() + hung.len() != submitted.len() {
        failures.push("outcome accounting does not add up".into());
    }
    failures.extend(oracle_mismatches.iter().take(5).cloned());
    failures.extend(kind_violations.iter().take(5).cloned());
    if health.workers_alive != workers {
        failures.push(format!(
            "worker pool never healed: {} alive of {workers} (deaths {})",
            health.workers_alive, health.worker_deaths
        ));
    }
    if kills > 0 && health.worker_deaths != kills {
        failures.push(format!(
            "chaos kills unaccounted: requested {kills}, observed {}",
            health.worker_deaths
        ));
    }

    for f in &failures {
        eprintln!("AUDIT FAIL: {f}");
    }
    if assert_audit && !failures.is_empty() {
        std::process::exit(1);
    }
    eprintln!(
        "service_chaos: {} admitted, {} outcomes, {} kills survived in {:.1}s",
        submitted.len(),
        outcomes.len(),
        kills,
        wall_ms as f64 / 1000.0
    );
}
