//! Figure 5: power density vs. number of active memory arrays for the PUM
//! datapaths, against the air-cooling limit — the motivation for RF
//! holders and thermal-aware scheduling.

use experiments::{parse_jobs, print_table};
use pum_backend::power::{
    fig5_sweep, floatpim_like, thermal_active_limit, AIR_COOLING_LIMIT_W_PER_CM2,
};
use pum_backend::{DatapathKind, DatapathModel};
use workloads::{effective_jobs, parallel_map};

fn main() {
    // The paper's three substrates and its FloatPIM comparison curve,
    // plus the pLUTo and DPU models the repo ships beyond the paper.
    let mut models = vec![
        DatapathModel::racer(),
        DatapathModel::mimdram(),
        DatapathModel::duality_cache(),
        floatpim_like(),
        DatapathModel::pluto(),
        DatapathModel::dpu(),
    ];
    let _ = DatapathKind::ALL;

    // One sweep per datapath model, fanned across worker threads.
    let sweeps = parallel_map(models.clone(), effective_jobs(parse_jobs()), |m| fig5_sweep(&m));

    let actives = [1usize, 2, 4, 8, 16, 32, 64];
    let mut rows = Vec::new();
    for active in actives {
        let mut row = vec![active.to_string()];
        for sweep in &sweeps {
            let point = sweep.iter().find(|p| p.active_arrays == active);
            row.push(match point {
                Some(p) => format!("{:.1}", p.w_per_cm2),
                None => "-".to_string(),
            });
        }
        rows.push(row);
    }
    print_table(
        "Fig. 5 — power density (W/cm2) vs active arrays per RFH footprint",
        &["active", "RACER", "MIMDRAM", "DualityCache", "FloatPIM", "pLUTo", "DPU"],
        &rows,
    );
    println!("\nair-cooling limit: {AIR_COOLING_LIMIT_W_PER_CM2} W/cm2");
    for m in models.drain(..) {
        println!("{:>13}: thermally safe active VRFs/RFH = {}", m.name(), thermal_active_limit(&m));
    }
    println!(
        "\nPaper reference: RACER limited to ~1 active pipeline per cluster; \
         Duality Cache never thermally throttles."
    );
}
