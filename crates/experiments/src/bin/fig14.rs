//! Figure 14: end-to-end application speedup and energy savings vs. the
//! GPU, for Baseline and MPU on RACER and MIMDRAM.

use experiments::{app_matrix_jobs, fmt_ratio, parse_jobs, print_table, SEED};

fn main() {
    let apps = app_matrix_jobs(SEED, parse_jobs());
    for metric in ["speedup", "energy savings"] {
        let rows: Vec<Vec<String>> = apps
            .iter()
            .map(|a| {
                let pick = |i: usize, time_ns: f64, energy_pj: f64| match metric {
                    "speedup" => a.gpu[i].time_ns / time_ns,
                    _ => a.gpu[i].energy_pj / energy_pj,
                };
                vec![
                    a.app.to_string(),
                    fmt_ratio(pick(
                        0,
                        a.baseline[0].stats.time_ns(),
                        a.baseline[0].stats.energy.total_pj(),
                    )),
                    fmt_ratio(pick(0, a.mpu[0].stats.time_ns(), a.mpu[0].stats.energy.total_pj())),
                    fmt_ratio(pick(
                        1,
                        a.baseline[1].stats.time_ns(),
                        a.baseline[1].stats.energy.total_pj(),
                    )),
                    fmt_ratio(pick(1, a.mpu[1].stats.time_ns(), a.mpu[1].stats.energy.total_pj())),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 14 — end-to-end {metric} vs GPU"),
            &["application", "Base:RACER", "MPU:RACER", "Base:MIMDRAM", "MPU:MIMDRAM"],
            &rows,
        );
    }
    println!(
        "\nPaper reference: MPU:RACER/MPU:MIMDRAM reach 198x/229x (LLMEncode) and \
         400x/545x (EditDistance) over GPU; BlackScholes remains a GPU win (CORDIC \
         subroutines vs dedicated hardware) but MPU beats Baseline by 2.50x; MPU \
         energy savings 5.4x/14.2x."
    );
}
