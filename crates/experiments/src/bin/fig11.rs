//! Figure 11 and the §VIII-A synthesis numbers: per-component area and
//! power breakdown of one MPU front end, plus the RACER chip-augmentation
//! example.

use experiments::print_table;
use pum_backend::area::{augment_chip, FrontEndModel};

fn main() {
    let model = FrontEndModel::default();
    let rows: Vec<Vec<String>> = model
        .components()
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                if c.storage { "storage" } else { "logic" }.to_string(),
                format!("{:.4}", c.area_mm2),
                format!("{:.4}", c.static_mw),
                format!("{:.3}", c.dynamic_mw),
            ]
        })
        .collect();
    print_table(
        "Fig. 11 — MPU front-end breakdown",
        &["component", "kind", "area (mm2)", "static (mW)", "dynamic (mW)"],
        &rows,
    );
    println!(
        "\ntotals: area {:.3} mm2 (paper 0.123), static {:.2} mW (paper 1.22), \
         dynamic {:.2} mW (paper 71.72)",
        model.total_area_mm2(),
        model.total_static_mw(),
        model.total_dynamic_mw()
    );
    println!(
        "storage shares: area {:.0}% (paper 53%), static {:.0}% (paper 91%), \
         dynamic {:.0}% (paper ~all)",
        100.0 * model.storage_area_share(),
        100.0 * model.storage_static_share(),
        100.0 * model.storage_dynamic_share()
    );
    let chip = augment_chip(&model, 4.00, 330.0, 512);
    println!(
        "\nRACER + 512 MPUs: chip area {:.2} cm2 (paper 4.63), static {:.0} mW \
         (paper 955), max control-path draw {:.1} W (paper 36.7)",
        chip.total_area_cm2, chip.total_static_mw, chip.max_control_path_w
    );
}
