//! `mpu_profile` — trace one kernel and emit its cycle/energy attribution
//! profile plus a Perfetto-loadable Chrome trace.
//!
//! ```text
//! mpu_profile --kernel vecadd [--backend racer|mimdram|dualitycache]
//!             [--mode mpu|baseline] [--n 4096] [--seed 42]
//!             [--out trace.json]
//! ```
//!
//! The attribution profile (program line → instruction → micro-op class,
//! with exact cycle/energy sums) prints to stdout; the Chrome trace is
//! written to `--out` (default `mpu_profile.json`) and loads directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use experiments::{parse_backend, profile_kernel};
use pum_backend::DatapathKind;
use std::process::ExitCode;

struct Args {
    kernel: String,
    backend: DatapathKind,
    baseline: bool,
    n: u64,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut kernel = None;
    let mut backend = DatapathKind::Racer;
    let mut baseline = false;
    let mut n = 1 << 12;
    let mut seed = 42;
    let mut out = String::from("mpu_profile.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match arg.as_str() {
            "--kernel" => kernel = Some(value("--kernel")?),
            "--backend" => backend = parse_backend(&value("--backend")?)?,
            "--mode" => {
                baseline = match value("--mode")?.as_str() {
                    "mpu" => false,
                    "baseline" => true,
                    other => {
                        return Err(format!("unknown mode {other:?}; expected mpu or baseline"))
                    }
                }
            }
            "--n" => {
                n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?;
            }
            "--seed" => {
                seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => out = value("--out")?,
            "--help" | "-h" => {
                return Err(
                    "usage: mpu_profile --kernel <name> [--backend racer|mimdram|dualitycache] \
                            [--mode mpu|baseline] [--n N] [--seed S] [--out trace.json]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    let kernel = kernel.ok_or("missing required --kernel <name> (try --help)")?;
    Ok(Args { kernel, backend, baseline, n, seed, out })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let report = match profile_kernel(&args.kernel, args.backend, args.baseline, args.n, args.seed)
    {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("mpu_profile: {msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "# {} on {} (n={}, seed={}), verified={}",
        args.kernel, report.run.label, args.n, args.seed, report.run.verified
    );
    print!("{}", report.profile_text);
    if let Err(e) = std::fs::write(&args.out, &report.chrome_json) {
        eprintln!("mpu_profile: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "\nwrote Chrome trace to {} — load it in chrome://tracing or https://ui.perfetto.dev",
        args.out
    );
    ExitCode::SUCCESS
}
