//! Regenerates every table and figure in sequence (the full artifact run).

use std::process::Command;

fn main() {
    // Forward our own flags (e.g. `--jobs N`) to every child binary.
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let artifacts = [
        "table1", "table3", "fig01", "fig05", "fig11", "fig12", "fig13", "fig14", "fig15", "table4",
    ];
    for artifact in artifacts {
        println!("\n########## {artifact} ##########");
        let status =
            Command::new(std::env::current_exe().expect("self path").with_file_name(artifact))
                .args(&forwarded)
                .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{artifact} exited with {s}"),
            Err(e) => eprintln!("failed to launch {artifact}: {e} (run `cargo run -p experiments --bin {artifact}`)"),
        }
    }
}
