//! Figure 12: speedup (top) and energy savings (bottom) of MPU:X over
//! Baseline:X for all 28 kernels. The paper evaluates X ∈ {RACER,
//! MIMDRAM, DualityCache}; the table adds the repo's pLUTo and DPU
//! substrates as extra columns (the paper reference line covers only the
//! first three).

use experiments::{
    fmt_ratio, geomean, kernel_matrix_jobs, parse_jobs, print_table, KERNEL_N, SEED,
};
use pum_backend::DatapathKind;
use workloads::KernelGroup;

fn main() {
    let jobs = parse_jobs();
    let kinds = DatapathKind::ALL;
    let matrices: Vec<_> =
        kinds.iter().map(|&k| kernel_matrix_jobs(k, KERNEL_N, SEED, jobs)).collect();

    for metric in ["speedup", "energy savings"] {
        let mut rows = Vec::new();
        let mut last_group = None;
        for i in 0..matrices[0].len() {
            let group = matrices[0][i].group;
            if last_group != Some(group) {
                last_group = Some(group);
                rows.push(vec![format!("[{}]", group.label())]);
            }
            let mut row = vec![matrices[0][i].kernel.to_string()];
            for m in &matrices {
                let v = match metric {
                    "speedup" => m[i].mpu_speedup_vs_baseline(),
                    _ => m[i].mpu_energy_savings_vs_baseline(),
                };
                row.push(fmt_ratio(v));
            }
            rows.push(row);
        }
        // Group and overall means.
        for group in KernelGroup::ALL {
            let mut row = vec![format!("mean({})", group.label())];
            for m in &matrices {
                let vals = m.iter().filter(|r| r.group == group).map(|r| match metric {
                    "speedup" => r.mpu_speedup_vs_baseline(),
                    _ => r.mpu_energy_savings_vs_baseline(),
                });
                row.push(fmt_ratio(geomean(vals)));
            }
            rows.push(row);
        }
        let mut row = vec!["MEAN(all 21)".to_string()];
        for m in &matrices {
            let vals = m.iter().map(|r| match metric {
                "speedup" => r.mpu_speedup_vs_baseline(),
                _ => r.mpu_energy_savings_vs_baseline(),
            });
            row.push(fmt_ratio(geomean(vals)));
        }
        rows.push(row);

        print_table(
            &format!("Fig. 12 — MPU:X {metric} over Baseline:X (n = {KERNEL_N})"),
            &["kernel", "RACER", "MIMDRAM", "DualityCache", "pLUTo", "DPU"],
            &rows,
        );
    }
    println!(
        "\nPaper reference: average speedups 1.79x / 1.70x / 1.12x and energy savings \
         3.23x / 2.34x / 4.07x for RACER / MIMDRAM / DualityCache; basic kernels show \
         slight slowdowns (iso-area capacity loss), stencil+complex gain ~4.4x on RACER."
    );
}
