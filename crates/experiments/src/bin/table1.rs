//! Table I: MPU features vs. prior PUM datapaths, CPUs, and GPUs.

use experiments::print_table;
use pum_backend::{supports, Feature, Platform};

fn main() {
    let mut rows = Vec::new();
    let mut last_section = "";
    for feature in Feature::ALL {
        if feature.section() != last_section {
            last_section = feature.section();
            rows.push(vec![format!("[{last_section}]")]);
        }
        let mut row = vec![feature.label().to_string()];
        for platform in Platform::ALL {
            row.push(if supports(platform, feature) { "*" } else { "." }.to_string());
        }
        rows.push(row);
    }
    print_table(
        "Table I — supported features (* = supported)",
        &["feature", "LS", "DC", "MD", "RC", "CPU", "GPU", "MPU"],
        &rows,
    );
}
