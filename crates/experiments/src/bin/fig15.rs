//! Figure 15: execution-time breakdown — MPU computation, on-chip
//! inter-MPU communication, and off-chip CPU communication — for the
//! end-to-end applications under MPU and Baseline.

use experiments::{app_matrix_jobs, parse_jobs, print_table, SEED};

fn main() {
    let apps = app_matrix_jobs(SEED, parse_jobs());
    let mut rows = Vec::new();
    for a in &apps {
        for (cfg_idx, name) in [(0usize, "RACER"), (1, "MIMDRAM")] {
            for (mode, run) in [("MPU", &a.mpu[cfg_idx]), ("Baseline", &a.baseline[cfg_idx])] {
                let (compute, inter, offchip) = run.stats.time_breakdown();
                rows.push(vec![
                    a.app.to_string(),
                    format!("{mode}:{name}"),
                    format!("{:.1}%", 100.0 * compute),
                    format!("{:.1}%", 100.0 * inter),
                    format!("{:.1}%", 100.0 * offchip),
                ]);
            }
        }
    }
    print_table(
        "Fig. 15 — execution-time breakdown",
        &["application", "config", "MPU compute", "inter-MPU", "off-chip CPU"],
        &rows,
    );
    println!(
        "\nPaper reference: MPU configurations have zero off-chip time; Baseline \
         EditDistance is almost entirely off-chip communication (7.72x worse than GPU)."
    );
}
