//! Execution-tier comparison: per-kernel host wall-clock of the compiled
//! (per-instruction) tier vs. the fused ensemble-trace tier on MPU:RACER,
//! with a bit-exactness check of the simulated statistics on every row.
//!
//! Each tier is timed steady-state: a shared [`RecipePool`] per tier is
//! warmed once, so rows measure per-run execution cost — the regime every
//! sweep and figure harness runs in — rather than one-time template
//! synthesis. `ensembles` reports the wave simulation's tier split as
//! `traced/total`: straight-line bodies fuse, data-dependent ones fall
//! back.

use experiments::{fmt_ratio, geomean, print_table, SEED};
use mastodon::{RecipePool, SimConfig};
use pum_backend::DatapathKind;
use std::sync::Arc;
use std::time::Instant;
use workloads::{all_kernels, run_kernel_pooled};

/// Problem size: matches the perf gate's `cargo bench` sweep, not the
/// figure-scale `KERNEL_N`, so a row is milliseconds rather than minutes.
const N: u64 = 1 << 12;

/// Timing repetitions per tier (median reported).
const REPS: usize = 5;

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let kernels = all_kernels();
    let compiled_cfg = {
        let mut c = SimConfig::mpu(DatapathKind::Racer);
        c.trace_ensembles = false;
        c
    };
    let trace_cfg = SimConfig::mpu(DatapathKind::Racer);
    let compiled_pool = Arc::new(RecipePool::new());
    let trace_pool = Arc::new(RecipePool::new());

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for k in &kernels {
        // Warm both pools and pin bit-exactness before timing anything.
        let compiled =
            run_kernel_pooled(k.as_ref(), &compiled_cfg, N, SEED, Some(&compiled_pool)).unwrap();
        let traced = run_kernel_pooled(k.as_ref(), &trace_cfg, N, SEED, Some(&trace_pool)).unwrap();
        assert_eq!(
            compiled.wave,
            traced.wave,
            "{}: tiers disagree on simulated statistics",
            k.name()
        );

        let time = |cfg: &SimConfig, pool: &Arc<RecipePool>| {
            median_ms(
                (0..REPS)
                    .map(|_| {
                        let t = Instant::now();
                        std::hint::black_box(
                            run_kernel_pooled(k.as_ref(), cfg, N, SEED, Some(pool)).unwrap(),
                        );
                        t.elapsed().as_secs_f64() * 1e3
                    })
                    .collect(),
            )
        };
        let t_compiled = time(&compiled_cfg, &compiled_pool);
        let t_trace = time(&trace_cfg, &trace_pool);
        let speedup = t_compiled / t_trace;
        speedups.push(speedup);
        rows.push(vec![
            k.name().to_string(),
            format!("{}/{}", traced.tiers.0, traced.tiers.0 + traced.tiers.1),
            format!("{t_compiled:.2}"),
            format!("{t_trace:.2}"),
            fmt_ratio(speedup),
        ]);
    }
    rows.push(vec![
        "GEOMEAN".to_string(),
        String::new(),
        String::new(),
        String::new(),
        fmt_ratio(geomean(speedups.into_iter())),
    ]);

    print_table(
        &format!("Execution tiers — compiled vs. trace wall-clock, MPU:RACER (n = {N}, warm pool)"),
        &["kernel", "ensembles", "compiled ms", "trace ms", "speedup"],
        &rows,
    );
}
