//! # experiments — regenerating every table and figure of the MPU paper
//!
//! One binary per artifact (`fig01`, `fig05`, `fig11`, `fig12`, `fig13`,
//! `fig14`, `fig15`, `table1`, `table3`, `table4`, plus `all`), each
//! printing the same rows/series the paper reports. This library holds the
//! shared runners and formatting.
//!
//! Absolute numbers come from our calibrated simulator and analytical
//! platform models, not the authors' testbed; EXPERIMENTS.md records the
//! paper-vs-measured comparison for every artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;

use mastodon::{RecipePool, SimConfig};
use platforms::{PlatformModel, PlatformRun};
use pum_backend::{DatapathKind, OptConfig, OptRule, OptStats};
use std::sync::Arc;
use workloads::apps::{run_app_pooled, AppRun};
use workloads::{
    all_kernels, effective_jobs, kernels_in_group, parallel_map, run_kernel, run_kernel_pooled,
    run_sweep_parallel, ChipRun, KernelGroup, SweepTask,
};

/// Default problem size for the streaming kernel groups (elements).
pub const KERNEL_N: u64 = 1 << 26;

/// Problem size for the compute-intensive complex group (fits on the
/// Duality Cache chip, as the paper's §VIII-B discussion requires).
pub const COMPLEX_N: u64 = 1 << 23;

/// Per-kernel problem size: streaming groups use [`KERNEL_N`], the
/// compute-bound complex group uses [`COMPLEX_N`].
pub fn problem_size(group: KernelGroup, base_n: u64) -> u64 {
    match group {
        KernelGroup::Complex => (base_n >> 5).max(1),
        _ => base_n,
    }
}

/// Default seed for all experiments (results are deterministic).
pub const SEED: u64 = 0xA5A5_2026;

/// One kernel compared across MPU, Baseline, and GPU.
#[derive(Debug)]
pub struct KernelComparison {
    /// Kernel name.
    pub kernel: &'static str,
    /// Kernel group.
    pub group: KernelGroup,
    /// MPU-mode chip run.
    pub mpu: ChipRun,
    /// Baseline-mode chip run.
    pub baseline: ChipRun,
    /// Analytical GPU run.
    pub gpu: PlatformRun,
}

impl KernelComparison {
    /// `Baseline → MPU` speedup (Fig. 12 top).
    pub fn mpu_speedup_vs_baseline(&self) -> f64 {
        self.baseline.time_ns / self.mpu.time_ns
    }

    /// `Baseline → MPU` energy savings (Fig. 12 bottom).
    pub fn mpu_energy_savings_vs_baseline(&self) -> f64 {
        self.baseline.energy_pj / self.mpu.energy_pj
    }

    /// `GPU → MPU` speedup (Fig. 13 top).
    pub fn mpu_speedup_vs_gpu(&self) -> f64 {
        self.gpu.time_ns / self.mpu.time_ns
    }

    /// `GPU → Baseline` speedup (Fig. 13 top).
    pub fn baseline_speedup_vs_gpu(&self) -> f64 {
        self.gpu.time_ns / self.baseline.time_ns
    }

    /// `GPU → MPU` energy savings (Fig. 13 bottom).
    pub fn mpu_energy_savings_vs_gpu(&self) -> f64 {
        self.gpu.energy_pj / self.mpu.energy_pj
    }

    /// `GPU → Baseline` energy savings (Fig. 13 bottom).
    pub fn baseline_energy_savings_vs_gpu(&self) -> f64 {
        self.gpu.energy_pj / self.baseline.energy_pj
    }
}

/// Runs all 28 kernels on one datapath in both modes, plus the GPU model.
///
/// Simulations fan out across worker threads (`MPU_JOBS` or the machine's
/// core count); results are bit-identical to a serial sweep. Use
/// [`kernel_matrix_jobs`] for an explicit thread count.
///
/// # Panics
///
/// Panics if any kernel fails to verify (a correctness regression).
pub fn kernel_matrix(kind: DatapathKind, n: u64, seed: u64) -> Vec<KernelComparison> {
    kernel_matrix_jobs(kind, n, seed, None)
}

/// [`kernel_matrix`] with an explicit worker-thread count (`None` =
/// `MPU_JOBS`, then all cores).
///
/// # Panics
///
/// Panics if any kernel fails to verify (a correctness regression).
pub fn kernel_matrix_jobs(
    kind: DatapathKind,
    n: u64,
    seed: u64,
    jobs: Option<usize>,
) -> Vec<KernelComparison> {
    let mpu_cfg = SimConfig::mpu(kind);
    let base_cfg = SimConfig::baseline(kind);
    let gpu = PlatformModel::rtx4090();
    let kernels = all_kernels();
    // Two sweep tasks per kernel (MPU mode, Baseline mode), in kernel order.
    let tasks: Vec<SweepTask<'_>> = kernels
        .iter()
        .flat_map(|kernel| {
            let kn = problem_size(kernel.group(), n);
            [
                SweepTask { kernel: kernel.as_ref(), config: mpu_cfg.clone(), n: kn, seed },
                SweepTask { kernel: kernel.as_ref(), config: base_cfg.clone(), n: kn, seed },
            ]
        })
        .collect();
    let mut runs = run_sweep_parallel(tasks, jobs).into_iter();
    kernels
        .iter()
        .map(|kernel| {
            let kn = problem_size(kernel.group(), n);
            let mpu = runs
                .next()
                .expect("one MPU run per kernel")
                .unwrap_or_else(|e| panic!("{} MPU: {e}", kernel.name()));
            let baseline = runs
                .next()
                .expect("one Baseline run per kernel")
                .unwrap_or_else(|e| panic!("{} Baseline: {e}", kernel.name()));
            let gpu_run = gpu.run(&kernel.profile(), kn);
            KernelComparison {
                kernel: kernel.name(),
                group: kernel.group(),
                mpu,
                baseline,
                gpu: gpu_run,
            }
        })
        .collect()
}

/// One end-to-end application compared across configurations (Fig. 14/15).
#[derive(Debug)]
pub struct AppComparison {
    /// Application name.
    pub app: &'static str,
    /// `MPU:<datapath>` runs, one per datapath in `kinds` order.
    pub mpu: Vec<AppRun>,
    /// `Baseline:<datapath>` runs.
    pub baseline: Vec<AppRun>,
    /// Analytical GPU runs over each datapath's replicated chip-scale
    /// problem size (parallel to the datapath order).
    pub gpu: Vec<PlatformRun>,
}

/// Runs the end-to-end applications on RACER and MIMDRAM, both modes,
/// plus the GPU model (the paper's Fig. 14 configuration set).
///
/// System simulations fan out across worker threads like
/// [`kernel_matrix`]; results are bit-identical to a serial sweep. Use
/// [`app_matrix_jobs`] for an explicit thread count.
///
/// # Panics
///
/// Panics if an application fails to verify.
pub fn app_matrix(seed: u64) -> Vec<AppComparison> {
    app_matrix_jobs(seed, None)
}

/// [`app_matrix`] with an explicit worker-thread count (`None` =
/// `MPU_JOBS`, then all cores).
///
/// # Panics
///
/// Panics if an application fails to verify.
pub fn app_matrix_jobs(seed: u64, jobs: Option<usize>) -> Vec<AppComparison> {
    let kinds = [DatapathKind::Racer, DatapathKind::Mimdram];
    let gpu = PlatformModel::rtx4090();
    let apps = workloads::apps::all_apps();
    // Four runs per app: MPU then Baseline, each over `kinds` in order.
    let configs: Vec<SimConfig> = kinds
        .iter()
        .map(|&k| SimConfig::mpu(k))
        .chain(kinds.iter().map(|&k| SimConfig::baseline(k)))
        .collect();
    let specs: Vec<(usize, SimConfig)> =
        (0..apps.len()).flat_map(|ai| configs.iter().map(move |c| (ai, c.clone()))).collect();
    let pool = Arc::new(RecipePool::new());
    let runs = parallel_map(specs, effective_jobs(jobs), |(ai, config)| {
        let app = apps[ai].as_ref();
        run_app_pooled(app, &config, app.default_mpus(), seed, Some(&pool))
            .unwrap_or_else(|e| panic!("{} {}: {e}", app.name(), config.label()))
    });
    let mut runs = runs.into_iter();
    apps.iter()
        .map(|app| {
            let mpus = app.default_mpus();
            let mpu: Vec<AppRun> =
                kinds.iter().map(|_| runs.next().expect("MPU run per kind")).collect();
            let baseline: Vec<AppRun> =
                kinds.iter().map(|_| runs.next().expect("Baseline run per kind")).collect();
            // Iso-area replication: the paper runs apps at chip scale
            // (130/2/23 MPUs with all VRFs); we simulate a scaled-down
            // instance and replicate it across the chip's MPU budget —
            // PUM replicas run in parallel (same time, energy adds), the
            // GPU processes the replicated element count. Each datapath
            // defines its own chip-scale problem (its lanes differ), so
            // the GPU column is computed per datapath.
            let mut mpu = mpu;
            let mut baseline = baseline;
            let mut gpu_runs = Vec::new();
            for (i, &k) in kinds.iter().enumerate() {
                let cfg = SimConfig::mpu(k);
                let replicas = (cfg.datapath.geometry().mpus_per_chip / mpus).max(1) as f64;
                let elements = app.elements(&cfg, mpus) as f64 * replicas;
                gpu_runs.push(gpu.run(&app.profile(), elements as u64));
                for run in [&mut mpu[i], &mut baseline[i]] {
                    let e = &mut run.stats.energy;
                    e.datapath_pj *= replicas;
                    e.frontend_pj *= replicas;
                    e.transfer_pj *= replicas;
                    e.offload_bus_pj *= replicas;
                    // The host CPU is shared: its energy does not replicate.
                }
            }
            AppComparison { app: app.name(), mpu, baseline, gpu: gpu_runs }
        })
        .collect()
}

/// Everything the `mpu_profile` binary emits for one traced kernel run:
/// the verified chip run, the rendered attribution profile, and a
/// Perfetto-loadable Chrome trace export.
#[derive(Debug, Clone)]
pub struct KernelProfileReport {
    /// The (verified) chip run whose wave was traced.
    pub run: ChipRun,
    /// Deterministic text rendering of the attribution tree.
    pub profile_text: String,
    /// Chrome trace-event JSON (load in `chrome://tracing` or Perfetto).
    pub chrome_json: String,
}

/// Runs one kernel with tracing armed and builds its attribution profile
/// and Chrome trace export. `baseline` selects host-offload mode.
///
/// # Errors
///
/// Returns a message naming the kernel (with the list of valid names) or
/// forwarding the harness failure.
pub fn profile_kernel(
    kernel_name: &str,
    backend: DatapathKind,
    baseline: bool,
    n: u64,
    seed: u64,
) -> Result<KernelProfileReport, String> {
    let kernels = all_kernels();
    let kernel = kernels.iter().find(|k| k.name() == kernel_name).ok_or_else(|| {
        let names: Vec<&str> = kernels.iter().map(|k| k.name()).collect();
        format!("unknown kernel {kernel_name:?}; available: {}", names.join(", "))
    })?;
    let config = if baseline { SimConfig::baseline(backend) } else { SimConfig::mpu(backend) };
    let log = mastodon::EventLog::new();
    let run = workloads::run_kernel_traced(kernel.as_ref(), &config, n, seed, &log)
        .map_err(|e| e.to_string())?;
    let events = log.take();
    let profile = mastodon::Profile::build(&events);
    debug_assert_eq!(profile.merged(), run.wave, "profile must conserve the wave stats");
    Ok(KernelProfileReport {
        run,
        profile_text: profile.render(),
        chrome_json: mastodon::chrome_trace_json(&events),
    })
}

/// One row of the recipe-optimizer attribution table (`recipe_opt`): one
/// kernel on one substrate, executed with the optimizer disabled and with
/// the default configuration over identical inputs.
#[derive(Debug, Clone, Copy)]
pub struct OptAttributionRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// Substrate the pair of runs executed on.
    pub backend: DatapathKind,
    /// Dynamic micro-ops issued with the optimizer disabled.
    pub uops_off: u64,
    /// Dynamic micro-ops issued under the default optimizer configuration.
    pub uops_on: u64,
    /// Dynamic micro-ops the optimizer removed. [`opt_attribution`] checks
    /// conservation: `uops_off == uops_on + uops_saved` exactly, i.e. the
    /// optimizer only ever deletes work the template would have issued.
    pub uops_saved: u64,
    /// Elapsed cycles `(off, on)`.
    pub cycles: (u64, u64),
    /// Total energy `(off, on)`, picojoules.
    pub energy_pj: (f64, f64),
    /// Per-rule attribution from the run's private recipe pool: fires and
    /// removed micro-ops per *synthesized* recipe (static counts — each
    /// unique instruction is optimized once and replayed every wave).
    pub opt: OptStats,
}

impl OptAttributionRow {
    /// Fraction of template micro-ops the optimizer removed, percent.
    pub fn saved_pct(&self) -> f64 {
        percent_delta(self.uops_off as f64, self.uops_on as f64).abs()
    }

    /// Cycle delta on→off, percent (negative = the optimized run is faster).
    pub fn cycles_delta_pct(&self) -> f64 {
        percent_delta(self.cycles.0 as f64, self.cycles.1 as f64)
    }

    /// Energy delta on→off, percent (negative = the optimized run is cheaper).
    pub fn energy_delta_pct(&self) -> f64 {
        percent_delta(self.energy_pj.0, self.energy_pj.1)
    }
}

fn percent_delta(off: f64, on: f64) -> f64 {
    if off == 0.0 {
        0.0
    } else {
        (on - off) / off * 100.0
    }
}

/// Runs every kernel on each substrate twice — optimizer off, then the
/// default (on) configuration with a private [`RecipePool`] harvesting the
/// per-rule counters — and returns one attribution row per pair. Both runs
/// must lane-verify, and the dynamic micro-op counts must conserve
/// (`off == on + saved`); either failing is an error, not a silent row.
///
/// # Errors
///
/// Returns a message naming the kernel/substrate on a harness failure,
/// verification failure, or conservation mismatch.
pub fn opt_attribution(
    backends: &[DatapathKind],
    n: u64,
    seed: u64,
) -> Result<Vec<OptAttributionRow>, String> {
    let mut rows = Vec::new();
    for &backend in backends {
        for kernel in all_kernels() {
            let on_cfg = SimConfig::mpu(backend);
            let pool = Arc::new(RecipePool::new());
            let on = run_kernel_pooled(kernel.as_ref(), &on_cfg, n, seed, Some(&pool))
                .map_err(|e| format!("{} on {backend:?} (optimizer on): {e}", kernel.name()))?;
            let mut off_cfg = SimConfig::mpu(backend);
            off_cfg.datapath = off_cfg.datapath.clone().with_opt_config(OptConfig::disabled());
            let off = run_kernel(kernel.as_ref(), &off_cfg, n, seed)
                .map_err(|e| format!("{} on {backend:?} (optimizer off): {e}", kernel.name()))?;
            if !on.verified || !off.verified {
                return Err(format!(
                    "{} on {backend:?}: lane verification failed (on={}, off={})",
                    kernel.name(),
                    on.verified,
                    off.verified
                ));
            }
            if off.wave.uops != on.wave.uops + on.wave.uops_saved {
                return Err(format!(
                    "{} on {backend:?}: uop conservation broken (off={}, on={}, saved={})",
                    kernel.name(),
                    off.wave.uops,
                    on.wave.uops,
                    on.wave.uops_saved
                ));
            }
            rows.push(OptAttributionRow {
                kernel: kernel.name(),
                backend,
                uops_off: off.wave.uops,
                uops_on: on.wave.uops,
                uops_saved: on.wave.uops_saved,
                cycles: (off.wave.cycles, on.wave.cycles),
                energy_pj: (off.wave.energy.total_pj(), on.wave.energy.total_pj()),
                opt: pool.stats().opt,
            });
        }
    }
    Ok(rows)
}

/// Renders the attribution rows as the `recipe_opt` table: one line per
/// kernel/substrate pair plus a `TOTAL` line per substrate, with per-rule
/// `fires/removed` columns. Deterministic — the golden snapshot pins it.
pub fn render_opt_attribution(rows: &[OptAttributionRow], n: u64, seed: u64) -> String {
    let mut headers = vec![
        "kernel".to_string(),
        "backend".to_string(),
        "uops(off)".to_string(),
        "uops(on)".to_string(),
        "saved".to_string(),
        "cycles".to_string(),
        "energy".to_string(),
    ];
    headers.extend(OptRule::ALL.iter().map(|r| r.name().to_string()));

    let fmt_rules = |opt: &OptStats| -> Vec<String> {
        OptRule::ALL
            .iter()
            .map(|&r| {
                let s = opt.rule(r);
                format!("{}/{}", s.fires, s.removed_uops)
            })
            .collect()
    };
    let fmt_row = |row: &OptAttributionRow, label: &str| -> Vec<String> {
        let mut cells = vec![
            label.to_string(),
            format!("{:?}", row.backend),
            row.uops_off.to_string(),
            row.uops_on.to_string(),
            format!("-{:.2}%", row.saved_pct()),
            format!("{:+.2}%", row.cycles_delta_pct()),
            format!("{:+.2}%", row.energy_delta_pct()),
        ];
        cells.extend(fmt_rules(&row.opt));
        cells
    };

    let mut body: Vec<Vec<String>> = Vec::new();
    for &backend in BACKEND_ORDER {
        let group: Vec<&OptAttributionRow> = rows.iter().filter(|r| r.backend == backend).collect();
        if group.is_empty() {
            continue;
        }
        for row in &group {
            body.push(fmt_row(row, row.kernel));
        }
        let mut total = OptAttributionRow {
            kernel: "TOTAL",
            backend,
            uops_off: 0,
            uops_on: 0,
            uops_saved: 0,
            cycles: (0, 0),
            energy_pj: (0.0, 0.0),
            opt: OptStats::default(),
        };
        for row in &group {
            total.uops_off += row.uops_off;
            total.uops_on += row.uops_on;
            total.uops_saved += row.uops_saved;
            total.cycles.0 += row.cycles.0;
            total.cycles.1 += row.cycles.1;
            total.energy_pj.0 += row.energy_pj.0;
            total.energy_pj.1 += row.energy_pj.1;
            total.opt.merge(&row.opt);
        }
        body.push(fmt_row(&total, "TOTAL"));
    }

    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in &body {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_line = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = format!(
        "# recipe optimizer attribution (n={n}, seed={seed}); per-rule cells are \
         fires/removed-uops per synthesized recipe\n"
    );
    out.push_str(&render_line(&headers));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &body {
        out.push_str(&render_line(row));
        out.push('\n');
    }
    out
}

/// One `prim_suite` row: one PrIM kernel on one substrate (default
/// optimizer configuration, compiled tier), wave counters plus the
/// chip-scaled time/energy projection.
#[derive(Debug, Clone)]
pub struct PrimSuiteRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// Substrate the run executed on.
    pub backend: DatapathKind,
    /// Elapsed wave cycles.
    pub cycles: u64,
    /// Retired ISA instructions.
    pub instructions: u64,
    /// Dynamic micro-ops issued.
    pub uops: u64,
    /// Chip-scaled execution time, nanoseconds.
    pub time_ns: f64,
    /// Chip-scaled total energy, picojoules.
    pub energy_pj: f64,
}

/// Runs every PrIM-group kernel on each substrate and returns one row per
/// pair. Every run lane-verifies against the kernel's golden model inside
/// the harness — a mismatch is an error, not a silent row.
///
/// # Errors
///
/// Returns a message naming the kernel/substrate on a harness or
/// verification failure.
pub fn prim_suite(
    backends: &[DatapathKind],
    n: u64,
    seed: u64,
) -> Result<Vec<PrimSuiteRow>, String> {
    let mut rows = Vec::new();
    for &backend in backends {
        for kernel in kernels_in_group(KernelGroup::Prim) {
            let config = SimConfig::mpu(backend);
            let run = run_kernel(kernel.as_ref(), &config, n, seed)
                .map_err(|e| format!("{} on {backend:?}: {e}", kernel.name()))?;
            rows.push(PrimSuiteRow {
                kernel: kernel.name(),
                backend,
                cycles: run.wave.cycles,
                instructions: run.wave.instructions,
                uops: run.wave.uops,
                time_ns: run.time_ns,
                energy_pj: run.energy_pj,
            });
        }
    }
    Ok(rows)
}

/// Renders the PrIM suite rows as the `prim_suite` table: one line per
/// kernel/substrate pair, grouped by substrate in [`BACKEND_ORDER`].
/// Deterministic — the golden snapshot and `--assert` pin it.
pub fn render_prim_suite(rows: &[PrimSuiteRow], n: u64, seed: u64) -> String {
    let headers =
        ["kernel", "backend", "cycles", "instructions", "uops", "time", "energy"].map(String::from);
    let mut body: Vec<Vec<String>> = Vec::new();
    for &backend in BACKEND_ORDER {
        for row in rows.iter().filter(|r| r.backend == backend) {
            body.push(vec![
                row.kernel.to_string(),
                format!("{:?}", row.backend),
                row.cycles.to_string(),
                row.instructions.to_string(),
                row.uops.to_string(),
                fmt_time_ns(row.time_ns),
                fmt_energy_pj(row.energy_pj),
            ]);
        }
    }

    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in &body {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_line = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = format!(
        "# PrIM workload suite (n={n}, seed={seed}); wave counters plus chip-scaled \
         time/energy, lane-verified per run\n"
    );
    out.push_str(&render_line(&headers));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &body {
        out.push_str(&render_line(row));
        out.push('\n');
    }
    out
}

/// Substrate order for attribution tables and sweeps: the three paper
/// substrates first, then the pLUTo and DPU models.
pub const BACKEND_ORDER: &[DatapathKind] = &[
    DatapathKind::Racer,
    DatapathKind::Mimdram,
    DatapathKind::DualityCache,
    DatapathKind::Pluto,
    DatapathKind::Dpu,
];

/// Parses a backend name for the profiling CLI.
///
/// # Errors
///
/// Returns a message listing the accepted spellings.
pub fn parse_backend(name: &str) -> Result<DatapathKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "racer" => Ok(DatapathKind::Racer),
        "mimdram" => Ok(DatapathKind::Mimdram),
        "dualitycache" | "duality-cache" | "dc" => Ok(DatapathKind::DualityCache),
        "pluto" => Ok(DatapathKind::Pluto),
        "dpu" | "upmem" => Ok(DatapathKind::Dpu),
        other => Err(format!(
            "unknown backend {other:?}; expected racer, mimdram, dualitycache, pluto, or dpu"
        )),
    }
}

/// Parses a `--jobs N` / `--jobs=N` override from the process arguments
/// (the experiment binaries' worker-thread flag; `MPU_JOBS` applies when
/// absent).
pub fn parse_jobs() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = arg.strip_prefix("--jobs=") {
            return v.parse().ok();
        }
    }
    None
}

/// Geometric mean (the paper's reported averages are means over ratios).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for v in values {
        log_sum += v.max(1e-300).ln();
        count += 1;
    }
    if count == 0 {
        return f64::NAN;
    }
    (log_sum / count as f64).exp()
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(headers.iter().map(|s| s.to_string()).collect()));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
}

/// Formats a ratio like the paper ("1.79x", "67x").
pub fn fmt_ratio(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else if v >= 10.0 {
        format!("{v:.1}x")
    } else {
        format!("{v:.2}x")
    }
}

/// Formats a duration in the most readable unit.
pub fn fmt_time_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Formats energy (input picojoules).
pub fn fmt_energy_pj(pj: f64) -> String {
    if pj >= 1e12 {
        format!("{:.2} J", pj / 1e12)
    } else if pj >= 1e9 {
        format!("{:.2} mJ", pj / 1e9)
    } else if pj >= 1e6 {
        format!("{:.2} uJ", pj / 1e6)
    } else {
        format!("{pj:.0} pJ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_ratios() {
        let g = geomean([1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty::<f64>()).is_nan());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ratio(1.789), "1.79x");
        assert_eq!(fmt_ratio(67.2), "67.2x");
        assert_eq!(fmt_ratio(156.0), "156x");
        assert_eq!(fmt_time_ns(1500.0), "1.50 us");
        assert_eq!(fmt_energy_pj(2.5e9), "2.50 mJ");
    }

    #[test]
    fn kernel_matrix_is_deterministic_across_job_counts() {
        let serial = kernel_matrix_jobs(DatapathKind::Racer, 1 << 10, 3, Some(1));
        let parallel = kernel_matrix_jobs(DatapathKind::Racer, 1 << 10, 3, Some(4));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.mpu, p.mpu, "{} MPU run diverged", s.kernel);
            assert_eq!(s.baseline, p.baseline, "{} Baseline run diverged", s.kernel);
        }
    }

    #[test]
    fn kernel_matrix_smoke_racer() {
        // Tiny n for speed; full sizes run in the fig binaries.
        let rows = kernel_matrix(DatapathKind::Racer, 1 << 12, 1);
        assert_eq!(rows.len(), 28);
        for row in &rows {
            assert!(row.mpu.verified && row.baseline.verified, "{}", row.kernel);
            assert!(row.mpu_speedup_vs_baseline() > 0.0);
        }
        // Control-flow-heavy groups must show MPU >> Baseline.
        let complex: Vec<f64> = rows
            .iter()
            .filter(|r| r.group == KernelGroup::Complex)
            .map(|r| r.mpu_speedup_vs_baseline())
            .collect();
        assert!(geomean(complex) > 2.0, "complex kernels gain strongly from the MPU");
    }
}
