//! Shared machinery for the service chaos soak (`service_chaos`) and the
//! load generator (`load_gen`): a seeded mixed-job generator, a
//! word-level reference-model oracle for submitted programs, bounded
//! waiting (a hang detector — `Service::wait` alone would mask one), and
//! latency percentile helpers.

use pum_backend::{DatapathKind, DatapathModel};
use rand::rngs::StdRng;
use rand::Rng;
use refmodel::{RefGeometry, RefMpu};
use service::{
    AdmitError, FaultRequest, JobId, JobOutcome, JobSpec, Priority, ProgramSource, RegInit, RegRef,
    Service, SubmissionLimits,
};
use std::time::{Duration, Instant};

/// Input lanes written per register (a common prefix of every geometry).
pub const GEN_LANES: usize = 8;

/// Knobs for the mixed-job generator.
#[derive(Debug, Clone, Copy)]
pub struct MixConfig {
    /// Tenants to spread jobs across (round-robin with random priority).
    pub tenants: usize,
    /// Fraction of jobs that are poison (deliberate worker panics).
    pub poison_frac: f64,
    /// Fraction of jobs that run under transient fault injection.
    pub fault_frac: f64,
    /// Transient fault rate for faulty jobs.
    pub fault_rate: f64,
    /// Fraction of jobs that carry a tight deadline.
    pub deadline_frac: f64,
    /// Fraction of jobs that are slow (boundary-crossing loop programs).
    pub slow_frac: f64,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            tenants: 8,
            poison_frac: 0.05,
            fault_frac: 0.15,
            fault_rate: 2e-3,
            deadline_frac: 0.05,
            slow_frac: 0.10,
        }
    }
}

/// What the generator made a job into — decides the acceptable outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Straight-line compute; must succeed and match the oracle.
    Compute,
    /// Boundary-crossing loop program; must succeed and match the oracle.
    Slow,
    /// Panics in the worker; must end as `worker_panic`.
    Poison,
    /// Runs under fault injection; success (oracle-exact) or typed
    /// `fault_budget_exhausted` are both acceptable.
    Faulty,
    /// Slow program with a tight deadline; success (oracle-exact) or
    /// `deadline_exceeded` are both acceptable.
    Deadline,
}

impl JobKind {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Compute => "compute",
            JobKind::Slow => "slow",
            JobKind::Poison => "poison",
            JobKind::Faulty => "faulty",
            JobKind::Deadline => "deadline",
        }
    }
}

/// A generated job plus its oracle-expected outputs (None for poison).
#[derive(Debug, Clone)]
pub struct GenJob {
    /// The submission.
    pub spec: JobSpec,
    /// Generator classification.
    pub kind: JobKind,
    /// Expected lane values per output register, from the reference
    /// model.
    pub expected: Option<Vec<Vec<u64>>>,
}

/// Submission ceilings that admit the generator's slow loop programs.
pub fn roomy_limits() -> SubmissionLimits {
    SubmissionLimits {
        max_program_instructions: 1 << 16,
        max_statements: 1 << 14,
        max_dynamic_loops: 1 << 12,
        ..Default::default()
    }
}

fn ref_geometry(kind: DatapathKind) -> RefGeometry {
    let g = DatapathModel::for_kind(kind).geometry();
    RefGeometry {
        lanes_per_vrf: g.lanes_per_vrf,
        regs_per_vrf: g.regs_per_vrf,
        vrfs_per_rfh: g.vrfs_per_rfh,
        rfhs_per_mpu: g.rfhs_per_mpu,
        active_vrfs_per_rfh: g.active_vrfs_per_rfh,
        mpus_per_chip: g.mpus_per_chip,
    }
}

/// Runs a job's program on the word-level reference model and returns
/// the expected lane values for each declared output register.
///
/// # Panics
///
/// Panics if the generated program fails to parse or execute — the
/// generator only emits valid programs.
pub fn oracle(spec: &JobSpec) -> Vec<Vec<u64>> {
    let text = match &spec.program {
        ProgramSource::EzText(text) => text,
        _ => panic!("oracle only covers ezpim-text jobs"),
    };
    let program = ezpim::parse(text).expect("generated text parses").assemble().expect("assembles");
    let mut mpu = RefMpu::new(ref_geometry(spec.backend), 0);
    for input in &spec.inputs {
        mpu.write_register(input.rfh, input.vrf, input.reg, &input.values);
    }
    mpu.run(&program).expect("generated program completes on the reference model");
    spec.outputs.iter().map(|o| mpu.read_register(o.rfh, o.vrf, o.reg)).collect()
}

const BACKENDS: [DatapathKind; 5] = DatapathKind::ALL;
const OPS: [&str; 4] = ["add", "and", "or", "xor"];

/// A straight-line compute program: 1–2 ensembles of 2–6 random
/// non-aliasing binary ops over registers 0..10.
fn gen_compute_text(rng: &mut StdRng) -> String {
    let mut text = String::new();
    for _ in 0..rng.random_range(1..=2u32) {
        text.push_str("ensemble h0.v0 {\n");
        for _ in 0..rng.random_range(2..=6u32) {
            let op = OPS[rng.random_range(0..OPS.len())];
            let rs = rng.random_range(0..10u32);
            let rt = rng.random_range(0..10u32);
            let rd = loop {
                let r = rng.random_range(0..10u32);
                if r != rs && r != rt {
                    break r;
                }
            };
            text.push_str(&format!("  {op} r{rs} r{rt} r{rd}\n"));
        }
        text.push_str("}\n");
    }
    text
}

/// A boundary-crossing slow program: `ensembles` top-level ensembles,
/// each a dynamic `for` loop of r1 iterations accumulating +1 into r2.
pub fn slow_text(ensembles: usize) -> String {
    let mut s = String::new();
    for _ in 0..ensembles {
        s.push_str("ensemble h0.v0 {\n  for r0 < r1 {\n    add r2 r3 r2\n  }\n}\n");
    }
    s
}

fn base_spec(rng: &mut StdRng, tenant: String, text: &str) -> JobSpec {
    let backend = BACKENDS[rng.random_range(0..BACKENDS.len())];
    let mut spec = JobSpec::ez(&tenant, backend, text);
    spec.priority = match rng.random_range(0..100u32) {
        0..=14 => Priority::Low,
        15..=84 => Priority::Normal,
        _ => Priority::High,
    };
    spec
}

/// Generates job number `i` of a seeded mixed workload.
pub fn gen_job(rng: &mut StdRng, i: u64, mix: &MixConfig) -> GenJob {
    let tenant = format!("tenant-{}", i as usize % mix.tenants.max(1));
    // The vendored rand stub only samples integer ranges.
    let roll: f64 = rng.random_range(0..1_000_000u64) as f64 / 1e6;
    let poison_edge = mix.poison_frac;
    let fault_edge = poison_edge + mix.fault_frac;
    let deadline_edge = fault_edge + mix.deadline_frac;
    let slow_edge = deadline_edge + mix.slow_frac;

    if roll < poison_edge {
        let mut spec = base_spec(rng, tenant, "ensemble h0.v0 {\n  add r0 r1 r2\n}");
        spec.program = ProgramSource::PoisonPanic;
        return GenJob { spec, kind: JobKind::Poison, expected: None };
    }

    if roll < fault_edge {
        let text = gen_compute_text(rng);
        let mut spec = base_spec(rng, tenant, &text);
        fill_io(rng, &mut spec);
        spec.fault = Some(FaultRequest {
            seed: rng.random_range(1..=u64::MAX),
            transient_rate: mix.fault_rate,
        });
        let expected = oracle(&spec);
        return GenJob { spec, kind: JobKind::Faulty, expected: Some(expected) };
    }

    if roll < deadline_edge || roll < slow_edge {
        let ensembles = rng.random_range(3..=6u32) as usize;
        let iters = rng.random_range(20..=60u64);
        let mut spec = base_spec(rng, tenant, &slow_text(ensembles));
        spec.inputs.push(RegInit { rfh: 0, vrf: 0, reg: 1, values: vec![iters] });
        spec.inputs.push(RegInit { rfh: 0, vrf: 0, reg: 3, values: vec![1] });
        spec.outputs.push(RegRef { rfh: 0, vrf: 0, reg: 2 });
        let kind = if roll < deadline_edge {
            spec.deadline_ms = Some(rng.random_range(5..=30u64));
            JobKind::Deadline
        } else {
            JobKind::Slow
        };
        let expected = oracle(&spec);
        return GenJob { spec, kind, expected: Some(expected) };
    }

    let text = gen_compute_text(rng);
    let mut spec = base_spec(rng, tenant, &text);
    fill_io(rng, &mut spec);
    let expected = oracle(&spec);
    GenJob { spec, kind: JobKind::Compute, expected: Some(expected) }
}

/// Seeds registers 0..4 with random lanes and declares registers 0..10
/// as outputs (every register the compute generator can touch).
fn fill_io(rng: &mut StdRng, spec: &mut JobSpec) {
    for reg in 0..4u8 {
        let values: Vec<u64> = (0..GEN_LANES).map(|_| rng.random_range(0..=u64::MAX)).collect();
        spec.inputs.push(RegInit { rfh: 0, vrf: 0, reg, values });
    }
    for reg in 0..10u8 {
        spec.outputs.push(RegRef { rfh: 0, vrf: 0, reg });
    }
}

/// Submits with bounded backpressure: typed load-shedding rejections
/// (queue full, shed, tenant quota) are retried after a short sleep —
/// that pressure is the service working as designed, and the generator
/// wants most of its jobs to eventually land. Anything else (or retry
/// exhaustion) is returned to the caller as the typed rejection.
///
/// # Errors
///
/// The final typed rejection if backpressure never cleared.
pub fn submit_retrying(
    service: &Service,
    spec: &JobSpec,
    max_tries: u32,
    backoff: Duration,
) -> Result<JobId, AdmitError> {
    let mut last = None;
    for _ in 0..max_tries.max(1) {
        match service.submit(spec.clone()) {
            Ok(id) => return Ok(id),
            Err(
                e @ (AdmitError::QueueFull { .. }
                | AdmitError::LoadShed { .. }
                | AdmitError::TenantQuotaExceeded { .. }),
            ) => last = Some(e),
            Err(other) => return Err(other),
        }
        std::thread::sleep(backoff);
    }
    Err(last.expect("at least one try"))
}

/// Waits for every job with a global deadline; returns the outcomes and
/// the ids that never became terminal (hangs).
pub fn bounded_wait_all(
    service: &Service,
    ids: &[JobId],
    deadline: Duration,
) -> (Vec<(JobId, JobOutcome)>, Vec<JobId>) {
    let until = Instant::now() + deadline;
    let mut done = Vec::with_capacity(ids.len());
    let mut pending: Vec<JobId> = ids.to_vec();
    while !pending.is_empty() && Instant::now() < until {
        pending.retain(|&id| match service.try_outcome(id) {
            Some(outcome) => {
                done.push((id, outcome));
                false
            }
            None => true,
        });
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    (done, pending)
}

/// The `p`-th percentile (0.0–1.0) of a sorted sample, nearest-rank.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generator_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mix = MixConfig::default();
        for i in 0..20 {
            let ja = gen_job(&mut a, i, &mix);
            let jb = gen_job(&mut b, i, &mix);
            assert_eq!(ja.kind, jb.kind);
            assert_eq!(ja.spec.tenant, jb.spec.tenant);
            assert_eq!(ja.expected, jb.expected);
        }
    }

    #[test]
    fn oracle_matches_simple_add() {
        let mut spec = JobSpec::ez("t", DatapathKind::Racer, "ensemble h0.v0 {\n  add r0 r1 r2\n}");
        spec.inputs.push(RegInit { rfh: 0, vrf: 0, reg: 0, values: vec![2, 10] });
        spec.inputs.push(RegInit { rfh: 0, vrf: 0, reg: 1, values: vec![3, 30] });
        spec.outputs.push(RegRef { rfh: 0, vrf: 0, reg: 2 });
        let expected = oracle(&spec);
        assert_eq!(expected[0][0], 5);
        assert_eq!(expected[0][1], 40);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sample, 0.50), 50);
        assert_eq!(percentile(&sample, 0.99), 99);
        assert_eq!(percentile(&sample, 0.999), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
