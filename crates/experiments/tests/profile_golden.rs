//! Golden-profile snapshots for `mpu_profile`: one pinned kernel per
//! backend. The rendered attribution profile is a pure function of the
//! simulator, so any diff is a real behavior change — inspect it, and if
//! intentional re-bless with `MPU_BLESS=1 cargo test -p experiments`.

use experiments::profile_kernel;
use microjson::Value;
use pum_backend::DatapathKind;
use std::path::PathBuf;

const PINNED: [(&str, DatapathKind, &str); 5] = [
    ("vecadd", DatapathKind::Racer, "profile_vecadd_racer.txt"),
    ("saxpy", DatapathKind::Mimdram, "profile_saxpy_mimdram.txt"),
    ("xorcipher", DatapathKind::DualityCache, "profile_xorcipher_dualitycache.txt"),
    ("vecadd", DatapathKind::Pluto, "profile_vecadd_pluto.txt"),
    ("saxpy", DatapathKind::Dpu, "profile_saxpy_dpu.txt"),
];

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join(file)
}

#[test]
fn pinned_profiles_match_golden_snapshots() {
    let bless = std::env::var("MPU_BLESS").as_deref() == Ok("1");
    for (kernel, backend, file) in PINNED {
        let report = profile_kernel(kernel, backend, false, 1 << 12, 42)
            .unwrap_or_else(|e| panic!("{kernel} on {backend:?}: {e}"));
        assert!(report.run.verified);
        let path = golden_path(file);
        if bless {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
            std::fs::write(&path, &report.profile_text).expect("write golden profile");
            eprintln!("blessed {}", path.display());
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden profile {} ({e}); bless with MPU_BLESS=1 cargo test -p experiments",
                path.display()
            )
        });
        assert_eq!(
            report.profile_text,
            want,
            "{kernel} on {backend:?} drifted from {}; if intentional, re-bless with MPU_BLESS=1",
            path.display()
        );
    }
}

#[test]
fn pinned_chrome_exports_are_loadable() {
    for (kernel, backend, _) in PINNED {
        let report = profile_kernel(kernel, backend, false, 1 << 12, 42)
            .unwrap_or_else(|e| panic!("{kernel} on {backend:?}: {e}"));
        let doc = Value::parse(&report.chrome_json)
            .unwrap_or_else(|e| panic!("{kernel} export is not valid JSON: {e}"));
        let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
        assert!(!events.is_empty(), "{kernel} trace must not be empty");
    }
}
