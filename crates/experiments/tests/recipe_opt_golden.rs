//! Golden snapshot of the `recipe_opt` per-rule attribution table, plus
//! the headline acceptance check: the optimizer's aggregate dynamic
//! micro-op reduction must stay at or above 10% on at least one substrate.
//! The table is a pure function of the simulator; re-bless a deliberate
//! change with `MPU_BLESS=1 cargo test -p experiments`.

use experiments::{opt_attribution, render_opt_attribution, BACKEND_ORDER};
use std::path::PathBuf;

const N: u64 = 1 << 12;
const SEED: u64 = 42;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join("recipe_opt.txt")
}

#[test]
fn attribution_table_matches_golden_and_meets_floor() {
    // opt_attribution itself enforces lane verification and the uop
    // conservation law (off == on + saved) for every row.
    let rows = opt_attribution(BACKEND_ORDER, N, SEED).expect("attribution sweep");
    assert_eq!(rows.len(), 28 * BACKEND_ORDER.len(), "one row per kernel per substrate");

    // Headline floor: >= 10% aggregate dynamic uop reduction somewhere.
    let best = BACKEND_ORDER
        .iter()
        .map(|&b| {
            let (off, on): (u64, u64) = rows
                .iter()
                .filter(|r| r.backend == b)
                .fold((0, 0), |(off, on), r| (off + r.uops_off, on + r.uops_on));
            (b, 100.0 * (off - on) as f64 / off as f64)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one substrate");
    assert!(
        best.1 >= 10.0,
        "aggregate uop reduction fell below the 10% floor (best: {:.2}% on {:?})",
        best.1,
        best.0
    );

    // Every rule family must pay for itself somewhere in the sweep.
    for rule in pum_backend::OptRule::ALL {
        assert!(
            rows.iter().any(|r| r.opt.rule(rule).fires > 0),
            "rule {} never fired across the whole sweep",
            rule.name()
        );
    }

    let actual = render_opt_attribution(&rows, N, SEED);
    let path = golden_path();
    if std::env::var("MPU_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &actual).expect("write golden attribution table");
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden table {} ({e}); bless with MPU_BLESS=1 cargo test -p experiments",
            path.display()
        )
    });
    assert_eq!(
        actual,
        want,
        "recipe_opt attribution drifted from {}; if intentional, re-bless with MPU_BLESS=1",
        path.display()
    );
}
