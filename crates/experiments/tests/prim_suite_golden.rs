//! Golden snapshot of the `prim_suite` per-substrate table. The table is
//! a pure function of the simulator (every run lane-verifies inside the
//! harness); re-bless a deliberate change with
//! `MPU_BLESS=1 cargo test -p experiments prim_suite`.

use experiments::{prim_suite, render_prim_suite, BACKEND_ORDER};
use std::path::PathBuf;

const N: u64 = 1 << 12;
const SEED: u64 = 42;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join("prim_suite.txt")
}

#[test]
fn prim_suite_table_matches_golden() {
    let rows = prim_suite(BACKEND_ORDER, N, SEED).expect("prim suite sweep");
    assert_eq!(rows.len(), 7 * BACKEND_ORDER.len(), "one row per PrIM kernel per substrate");

    let actual = render_prim_suite(&rows, N, SEED);
    let path = golden_path();
    if std::env::var("MPU_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &actual).expect("write golden prim_suite table");
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden table {} ({e}); bless with MPU_BLESS=1 cargo test -p experiments",
            path.display()
        )
    });
    assert_eq!(
        actual,
        want,
        "prim_suite table drifted from {}; if intentional, re-bless with MPU_BLESS=1",
        path.display()
    );
}
