//! Preempt/checkpoint/resume byte-identity, property-tested across every
//! backend.
//!
//! For arbitrary generator seeds, the single-MPU (comm-stripped) program
//! is run three ways on each backend: uninterrupted; preempted once at a
//! deterministic ensemble boundary and resumed in a *fresh* machine from
//! the exported checkpoint; and preempted twice (the resumed machine is
//! checkpointed again mid-run). All three must agree lane-exactly on
//! every architectural register and bit-exactly on the full [`Stats`]
//! ledger — the checkpoint carries fault-PRNG, recipe-cache, and
//! statistics state, so "paused and moved" is indistinguishable from
//! "never stopped".

use conformance::case::{lower, MpuCase};
use conformance::{generate, Top, BACKENDS};
use mastodon::{Mpu, RunControl, SimConfig, Stats, StepEvent};
use mpu_isa::{MpuId, Program};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Strips inter-MPU communication from a generated case's first MPU —
/// preemption is a single-machine affair (the service rejects comm at
/// admission for the same reason).
fn solo_case(seed: u64) -> MpuCase {
    let mut mpu = generate(seed).mpus.into_iter().next().expect("cases have at least one MPU");
    mpu.tops.retain(|t| !matches!(t, Top::Send { .. } | Top::Recv { .. }));
    mpu
}

/// Every `(rfh, vrf)` the case can touch, for the final register sweep.
fn touched_vrfs(mpu: &MpuCase) -> BTreeSet<(u16, u16)> {
    let mut set = BTreeSet::new();
    for input in &mpu.inputs {
        set.insert((input.rfh, input.vrf));
    }
    let vrfs: BTreeSet<u16> = mpu
        .inputs
        .iter()
        .map(|i| i.vrf)
        .chain(mpu.tops.iter().flat_map(|t| match t {
            Top::Ensemble { members, .. } => members.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            _ => Vec::new(),
        }))
        .chain(std::iter::once(0))
        .collect();
    for top in &mpu.tops {
        match top {
            Top::Ensemble { members, .. } => {
                set.extend(members.iter().copied());
            }
            Top::Move { pairs, .. } => {
                for &(src, dst) in pairs {
                    for &v in &vrfs {
                        set.insert((src, v));
                        set.insert((dst, v));
                    }
                }
            }
            _ => {}
        }
    }
    set
}

struct RunResult {
    stats: Stats,
    regs: Vec<((u16, u16, u8), Vec<u64>)>,
}

fn load_inputs(mpu: &mut Mpu, case: &MpuCase) {
    for input in &case.inputs {
        mpu.write_register(input.rfh, input.vrf, input.reg, &input.values)
            .expect("generated inputs are in geometry");
    }
}

fn sweep(mpu: &mut Mpu, vrfs: &BTreeSet<(u16, u16)>) -> Vec<((u16, u16, u8), Vec<u64>)> {
    let mut regs = Vec::new();
    for &(rfh, vrf) in vrfs {
        // The generator addresses registers 0..14.
        for reg in 0..14u8 {
            let values = mpu.read_register(rfh, vrf, reg).expect("in-geometry read");
            regs.push(((rfh, vrf, reg), values));
        }
    }
    regs
}

fn drive_to_completion(mpu: &mut Mpu, program: &Program) {
    match mpu.step(program).expect("comm-stripped case completes") {
        StepEvent::Completed => {}
        other => panic!("comm-stripped case yielded {other:?}"),
    }
}

/// Uninterrupted run; also reports how many boundaries the program
/// crosses, for pinning the preemption points.
fn reference_run(
    config: &SimConfig,
    case: &MpuCase,
    program: &Program,
    vrfs: &BTreeSet<(u16, u16)>,
) -> (RunResult, u64) {
    let mut mpu = Mpu::new(config.clone(), MpuId(0));
    let ctrl = Arc::new(RunControl::new());
    mpu.set_run_control(Arc::clone(&ctrl));
    load_inputs(&mut mpu, case);
    drive_to_completion(&mut mpu, program);
    let stats = mpu.finish();
    (RunResult { stats, regs: sweep(&mut mpu, vrfs) }, ctrl.boundaries())
}

/// Runs with preemptions pinned at the given boundary counts (each count
/// local to its machine hop); every preemption exports a checkpoint and
/// resumes it in a brand-new machine.
fn interrupted_run(
    config: &SimConfig,
    case: &MpuCase,
    program: &Program,
    vrfs: &BTreeSet<(u16, u16)>,
    preempt_points: &[u64],
) -> (RunResult, usize) {
    let mut mpu = Mpu::new(config.clone(), MpuId(0));
    load_inputs(&mut mpu, case);
    let mut hops = 0;
    for &at in preempt_points {
        let ctrl = Arc::new(RunControl::new());
        ctrl.preempt_at_boundary(at);
        mpu.set_run_control(Arc::clone(&ctrl));
        match mpu.step(program).expect("preemptible run does not fail") {
            StepEvent::Preempted => {
                let cp = mpu.export_checkpoint();
                // A fresh machine: nothing survives but the checkpoint.
                mpu = Mpu::new(config.clone(), MpuId(0));
                mpu.import_checkpoint(&cp).expect("same-config import");
                hops += 1;
            }
            StepEvent::Completed => break, // fewer boundaries left than `at`
            other => panic!("comm-stripped case yielded {other:?}"),
        }
    }
    mpu.clear_run_control();
    drive_to_completion(&mut mpu, program);
    let stats = mpu.finish();
    (RunResult { stats, regs: sweep(&mut mpu, vrfs) }, hops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Single and chained preempt/resume reproduce the uninterrupted
    /// run's registers and statistics exactly, on every backend.
    #[test]
    fn preempt_resume_is_byte_identical(seed in any::<u64>()) {
        let case = solo_case(seed);
        let program = lower(&case).expect("generated case lowers");
        let vrfs = touched_vrfs(&case);
        for kind in BACKENDS {
            let config = SimConfig::mpu(kind);
            let (reference, boundaries) = reference_run(&config, &case, &program, &vrfs);
            if boundaries == 0 {
                continue; // empty program: nothing to preempt
            }
            // One hop, pinned mid-program.
            let mid = boundaries / 2 + 1;
            let (once, hops) = interrupted_run(&config, &case, &program, &vrfs, &[mid]);
            prop_assert!(hops == 1, "seed {} {:?}: mid-preemption never fired", seed, kind);
            prop_assert_eq!(
                &once.regs, &reference.regs,
                "seed {} {:?}: registers diverged after one resume", seed, kind
            );
            prop_assert_eq!(
                once.stats, reference.stats,
                "seed {} {:?}: stats diverged after one resume", seed, kind
            );
            // Two hops: first boundary, then midway through the remainder
            // (boundary counts are per-hop — the resumed machine's control
            // starts a fresh counter).
            let second = (boundaries - 1) / 2 + 1;
            let (twice, hops) = interrupted_run(&config, &case, &program, &vrfs, &[1, second]);
            prop_assert!(hops >= 1, "seed {} {:?}: chained preemption never fired", seed, kind);
            prop_assert_eq!(
                &twice.regs, &reference.regs,
                "seed {} {:?}: registers diverged after chained resume", seed, kind
            );
            prop_assert_eq!(
                twice.stats, reference.stats,
                "seed {} {:?}: stats diverged after chained resume", seed, kind
            );
        }
    }
}
