//! The bounded conformance suite:
//!
//! * a differential sweep of generated cases across all backends and both
//!   recipe paths (`CONFORMANCE_CASES` overrides the case count — CI runs
//!   it large, the default keeps `cargo test` quick);
//! * a proptest-driven builder → text → parser round-trip property;
//! * the injected-bug canary: a deliberately corrupted MAJ adder recipe
//!   must be caught and shrunk to a ≤ 10-instruction reproducer;
//! * golden statistics snapshots pinning cycle/energy counters for a
//!   fixed corpus (re-bless with `MPU_BLESS=1`).

use conformance::{
    check_case, check_case_on, generate, generate_pipeline_case, reproducer_text, shrink, simulate,
    BACKENDS,
};
use conformance::{Case, Stmt, Top};
use mastodon::RecipePool;
use mpu_isa::{BinaryOp, Instruction, RegId};
use pum_backend::{build_recipe, DatapathKind, DatapathModel, MicroOp, OptConfig, Recipe};
use std::sync::Arc;

#[test]
fn bounded_differential_suite() {
    let cases: u64 =
        std::env::var("CONFORMANCE_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(40);
    for seed in 1000..1000 + cases {
        let case = generate(seed);
        if let Some(mismatch) = check_case(&case) {
            let (small, m) = shrink(&case, check_case);
            panic!("seed {seed}: {mismatch}\n{}", reproducer_text(&small, &m));
        }
    }
}

/// The dpapi-pipeline case family: lowered data-parallel pipelines run
/// through the same reference-model-vs-every-backend/tier differential
/// machinery as the free-form generated corpus, over inputs (including
/// lane validity patterns) the frontend's own runtime would never load.
#[test]
fn dpapi_pipeline_differential_suite() {
    let cases: u64 =
        std::env::var("CONFORMANCE_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(25);
    for seed in 0..cases {
        let case = generate_pipeline_case(seed);
        if let Some(mismatch) = check_case(&case) {
            let (small, m) = shrink(&case, check_case);
            panic!("pipeline seed {seed}: {mismatch}\n{}", reproducer_text(&small, &m));
        }
    }
}

mod round_trip {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Builder → ezpim text → parser → assemble reproduces the exact
        /// program for arbitrary generator seeds.
        #[test]
        fn ezpim_text_round_trips(seed in any::<u64>()) {
            let case = conformance::generate(seed);
            for (id, mpu) in case.mpus.iter().enumerate() {
                let direct = conformance::case::lower(mpu).expect("lower");
                let text = conformance::case::print_mpu(mpu);
                let reparsed = ezpim::parse(&text)
                    .map_err(|e| TestCaseError::fail(format!("seed {seed} mpu {id}: {e}")))?
                    .assemble()
                    .expect("assemble");
                prop_assert_eq!(direct, reparsed, "seed {} mpu {}\n{}", seed, id, text);
            }
        }
    }
}

/// Flips the carry chain of a MAJ-family adder recipe: after the first
/// `TRA` (which computes the new carry), invert the carry plane in place.
fn flip_carry(recipe: &Recipe) -> Recipe {
    let mut ops = recipe.ops().to_vec();
    let pos = ops.iter().position(|op| matches!(op, MicroOp::Tra { .. }));
    match pos {
        Some(i) => {
            let out = match ops[i] {
                MicroOp::Tra { out, .. } => out,
                _ => unreachable!(),
            };
            ops.insert(i + 1, MicroOp::Not { a: out, out });
        }
        None => {
            // Fallback for non-MAJ families: corrupt the final written plane.
            if let Some(MicroOp::FullAdd { carry, .. }) = ops.first().copied() {
                ops.insert(1, MicroOp::Not { a: carry, out: carry });
            }
        }
    }
    Recipe::from_ops(ops)
}

fn contains_add(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Op(Instruction::Binary { op: BinaryOp::Add, .. }) => true,
        Stmt::Op(_) => false,
        Stmt::If { then, .. } => contains_add(then),
        Stmt::IfElse { then, otherwise, .. } => contains_add(then) || contains_add(otherwise),
        Stmt::While { body, .. } | Stmt::For { body, .. } => contains_add(body),
    })
}

fn case_has_add(case: &Case) -> bool {
    case.mpus
        .iter()
        .flat_map(|m| &m.tops)
        .any(|t| matches!(t, Top::Ensemble { body, .. } if contains_add(body)))
}

#[test]
fn injected_carry_bug_is_caught_and_shrunk() {
    // Corrupt the ADD recipe for every operand combination the generator
    // can emit and plant it in a shared recipe pool.
    let model = DatapathModel::for_kind(DatapathKind::Mimdram);
    let ctx = model.recipe_ctx();
    let pool = Arc::new(RecipePool::new());
    for rs in 0..14u16 {
        for rt in 0..14u16 {
            for rd in 0..10u16 {
                let instr = Instruction::Binary {
                    op: BinaryOp::Add,
                    rs: RegId(rs),
                    rt: RegId(rt),
                    rd: RegId(rd),
                };
                let recipe = build_recipe(ctx, &instr).expect("ADD recipe");
                pool.preload(ctx, &instr, flip_carry(&recipe));
            }
        }
    }

    let predicate = |case: &Case| check_case_on(DatapathKind::Mimdram, case, Some(&pool));

    // Find a generated case that actually exercises an ADD and diverges.
    let mut caught = None;
    for seed in 0..200u64 {
        let case = generate(seed);
        if !case_has_add(&case) {
            continue;
        }
        if predicate(&case).is_some() {
            caught = Some((seed, case));
            break;
        }
    }
    let (seed, case) = caught.expect("no generated case tripped the corrupted adder in 200 seeds");

    let (small, mismatch) = shrink(&case, predicate);
    let len = small.lowered_len().expect("shrunk case must lower");
    assert!(
        len <= 10,
        "seed {seed}: reproducer not small enough ({len} instructions):\n{}",
        reproducer_text(&small, &mismatch)
    );
    assert!(case_has_add(&small), "shrunk reproducer lost the ADD:\n{}", small.to_text());
    // The clean pool-less run must still pass: the defect is in the
    // injected recipe, not the stack.
    assert_eq!(check_case_on(DatapathKind::Mimdram, &small, None), None);
}

/// Corrupts one LUT table entry of a pLUTo recipe — the in-memory analog
/// of a mis-programmed LUT row. The table is programmed into the DRAM
/// subarray once and queried at every bit position, so a single flipped
/// entry corrupts every query that uses that table, not just one op.
fn corrupt_lut_entry(recipe: &Recipe) -> Recipe {
    let mut ops = recipe.ops().to_vec();
    let target = ops.iter().find_map(|op| match op {
        MicroOp::Lut { table, .. } => Some(*table),
        _ => None,
    });
    if let Some(t) = target {
        for op in ops.iter_mut() {
            if let MicroOp::Lut { table, .. } = op {
                if *table == t {
                    // Minterm 0 (a=b=c=0): the generator builds small
                    // structured operand values, so this is the one entry
                    // virtually every ADD queries at some bit position.
                    *table ^= 1;
                }
            }
        }
    }
    Recipe::from_ops(ops)
}

/// Rewrites a DPU ADD word recipe into a SUB — the word-serial analog of a
/// corrupted entry in the DPU's dispatch/cost table sending the operands
/// down the wrong ALU sequence.
fn corrupt_word_dispatch(recipe: &Recipe) -> Recipe {
    let ops = recipe
        .ops()
        .iter()
        .map(|op| match *op {
            MicroOp::Word { instr: Instruction::Binary { op: BinaryOp::Add, rs, rt, rd } } => {
                MicroOp::Word { instr: Instruction::Binary { op: BinaryOp::Sub, rs, rt, rd } }
            }
            other => other,
        })
        .collect();
    Recipe::from_ops(ops)
}

/// Shared canary driver: preloads corrupted ADD recipes for `kind` into a
/// pool, proves the differential suite catches a generated case, and
/// shrinks it to a ≤ 10-instruction reproducer that passes cleanly without
/// the corrupted pool.
fn assert_canary_caught_and_shrunk(kind: DatapathKind, corrupt: impl Fn(&Recipe) -> Recipe) {
    let model = DatapathModel::for_kind(kind);
    let ctx = model.recipe_ctx();
    let pool = Arc::new(RecipePool::new());
    for rs in 0..14u16 {
        for rt in 0..14u16 {
            for rd in 0..10u16 {
                let instr = Instruction::Binary {
                    op: BinaryOp::Add,
                    rs: RegId(rs),
                    rt: RegId(rt),
                    rd: RegId(rd),
                };
                let recipe = build_recipe(ctx, &instr).expect("ADD recipe");
                pool.preload(ctx, &instr, corrupt(&recipe));
            }
        }
    }

    let predicate = |case: &Case| check_case_on(kind, case, Some(&pool));

    // Scan seeds until one both trips the canary and shrinks to a minimal
    // reproducer. Some catches sit inside loop bodies the shrinker cannot
    // break apart (the loop itself is load-bearing), so a single catch is
    // not enough — the canary contract needs one ≤10-instruction witness.
    let mut tripped = 0u32;
    let mut best: Option<(u64, usize, Case, String)> = None;
    for seed in 0..200u64 {
        let case = generate(seed);
        if !case_has_add(&case) || predicate(&case).is_none() {
            continue;
        }
        tripped += 1;
        let (small, mismatch) = shrink(&case, predicate);
        let len = small.lowered_len().expect("shrunk case must lower");
        if best.as_ref().is_none_or(|(_, blen, _, _)| len < *blen) {
            best = Some((seed, len, small, mismatch));
        }
        if best.as_ref().is_some_and(|(_, blen, _, _)| *blen <= 10) {
            break;
        }
    }
    assert!(tripped > 0, "no generated case tripped the {kind:?} canary in 200 seeds");
    let (seed, len, small, mismatch) = best.expect("a tripped canary always yields a shrink");
    assert!(
        len <= 10,
        "seed {seed}: best of {tripped} reproducers not small enough ({len} instructions):\n{}",
        reproducer_text(&small, &mismatch)
    );
    assert!(case_has_add(&small), "shrunk reproducer lost the ADD:\n{}", small.to_text());
    // The clean pool-less run must still pass: the defect is in the
    // injected recipe, not the stack.
    assert_eq!(check_case_on(kind, &small, None), None);
}

#[test]
fn injected_lut_table_bug_is_caught_and_shrunk() {
    assert_canary_caught_and_shrunk(DatapathKind::Pluto, corrupt_lut_entry);
}

#[test]
fn injected_dpu_dispatch_bug_is_caught_and_shrunk() {
    assert_canary_caught_and_shrunk(DatapathKind::Dpu, corrupt_word_dispatch);
}

#[test]
fn optimizer_on_suite_stays_conformant() {
    // The recipe optimizer is on by default, so `check_case_on` already
    // exercises optimized recipes on every backend and execution tier.
    // This sweep makes that explicit — and checks the complement: the same
    // cases must also pass with the optimizer disabled, so any divergence
    // between the two configurations is the optimizer's fault alone.
    let cases: u64 =
        std::env::var("CONFORMANCE_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(10);
    for seed in 3000..3000 + cases {
        let case = generate(seed);
        for kind in BACKENDS {
            let dp = DatapathModel::for_kind(kind);
            assert!(
                dp.opt_config().enabled,
                "{kind:?}: the shipped datapath must optimize by default"
            );
            if let Some(m) = check_case_on(kind, &case, None) {
                panic!("seed {seed} on {kind:?} with optimizer on: {m}");
            }
        }
    }
}

#[test]
fn optimizer_canary_is_caught_and_shrunk() {
    // The optimizer's built-in unsound-rule canary (it corrupts a `Set`
    // constant before rewriting, producing a lane-visible wrong recipe)
    // planted in a shared pool must be caught by the differential suite
    // and shrink to a small reproducer — mirroring the MAJ-carry canary.
    let model = DatapathModel::for_kind(DatapathKind::Racer);
    let canary = model.clone().with_opt_config(OptConfig { canary: true, ..OptConfig::default() });
    let ctx = model.recipe_ctx();
    let pool = Arc::new(RecipePool::new());
    for rs in 0..14u16 {
        for rt in 0..14u16 {
            for rd in 0..10u16 {
                let instr = Instruction::Binary {
                    op: BinaryOp::Add,
                    rs: RegId(rs),
                    rt: RegId(rt),
                    rd: RegId(rd),
                };
                let wrong = canary.recipe(&instr).expect("canary ADD recipe");
                pool.preload(ctx, &instr, wrong);
            }
        }
    }

    let predicate = |case: &Case| check_case_on(DatapathKind::Racer, case, Some(&pool));

    let mut caught = None;
    for seed in 0..200u64 {
        let case = generate(seed);
        if !case_has_add(&case) {
            continue;
        }
        if predicate(&case).is_some() {
            caught = Some((seed, case));
            break;
        }
    }
    let (seed, case) = caught.expect("no generated case tripped the optimizer canary in 200 seeds");

    let (small, mismatch) = shrink(&case, predicate);
    let len = small.lowered_len().expect("shrunk case must lower");
    assert!(
        len <= 10,
        "seed {seed}: reproducer not small enough ({len} instructions):\n{}",
        reproducer_text(&small, &mismatch)
    );
    assert!(case_has_add(&small), "shrunk reproducer lost the ADD:\n{}", small.to_text());
    // The clean pool-less run must still pass: the defect is the canary
    // recipe, not the optimizer or the stack.
    assert_eq!(check_case_on(DatapathKind::Racer, &small, None), None);
}

const GOLDEN_SEEDS: [u64; 5] = [1, 2, 3, 4, 5];

fn golden_lines() -> String {
    let mut out = String::new();
    let mut emit = |label: &str, seed: u64, case: &conformance::Case| {
        for kind in BACKENDS {
            let stats =
                simulate(kind, case).unwrap_or_else(|e| panic!("{label}={seed} on {kind:?}: {e}"));
            let energy = stats.energy.datapath_pj
                + stats.energy.frontend_pj
                + stats.energy.transfer_pj
                + stats.energy.offload_bus_pj
                + stats.energy.cpu_pj;
            out.push_str(&format!(
                "{label}={seed} backend={kind:?} cycles={} instructions={} uops={} waves={} \
                 messages={} noc_bytes={} energy_pj={energy:.3}\n",
                stats.cycles,
                stats.instructions,
                stats.uops,
                stats.scheduler_waves,
                stats.messages_sent,
                stats.noc_bytes,
            ));
        }
    };
    for seed in GOLDEN_SEEDS {
        emit("seed", seed, &generate(seed));
    }
    for seed in GOLDEN_SEEDS {
        emit("pipeline_seed", seed, &generate_pipeline_case(seed));
    }
    out
}

/// Pins cycle and energy counters for a fixed corpus. Any timing or
/// energy-model change shows up as a diff here; re-bless deliberately with
/// `MPU_BLESS=1 cargo test -p conformance golden`.
#[test]
fn golden_stats_snapshot() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/stats.txt");
    let actual = golden_lines();
    if std::env::var("MPU_BLESS").is_ok() {
        std::fs::write(path, &actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {path}: {e} (run with MPU_BLESS=1)"));
    assert_eq!(
        actual, expected,
        "golden statistics drifted; if intentional, re-bless with MPU_BLESS=1"
    );
}
