//! Property tests for the fault-injection and resilience layer: TMR
//! exactness against the fault-free reference model, DMR detect-or-match,
//! permanent-fault remapping at reduced capacity, and the byte-identity
//! of a disarmed fault layer — each across every shipped backend
//! (bit-serial NOR/MAJ/bitline, pLUTo LUT queries, word-serial DPU).

use conformance::{ref_geometry, run_sweep, PolicyKind, SweepConfig};
use mastodon::{run_single, Redundancy, SimConfig};
use mpu_isa::Program;
use pum_backend::{DatapathKind, DatapathModel};

fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn kernel() -> Program {
    Program::parse_asm(
        "COMPUTE h0 v0\n\
         ADD r0 r1 r2\n\
         MUL r2 r1 r3\n\
         XOR r3 r0 r4\n\
         SUB r4 r1 r5\n\
         COMPUTE_DONE",
    )
    .expect("kernel parses")
}

fn lanes_for(kind: DatapathKind) -> usize {
    DatapathModel::for_kind(kind).geometry().lanes_per_vrf
}

fn inputs(seed: u64, lanes: usize) -> (Vec<u64>, Vec<u64>) {
    let a = (0..lanes as u64).map(|i| mix(seed, i)).collect();
    let b = (0..lanes as u64).map(|i| mix(seed ^ 0xABCD, i) | 1).collect();
    (a, b)
}

/// Fault-free oracle registers `r2..=r5` on `kind`'s geometry with the
/// first `lanes` lanes populated (the rest compute on zeros).
fn reference_regs(kind: DatapathKind, seed: u64, lanes: usize) -> Vec<Vec<u64>> {
    let (a, b) = inputs(seed, lanes);
    let mut reference = refmodel::RefMpu::new(ref_geometry(kind), 0);
    reference.write_register(0, 0, 0, &a);
    reference.write_register(0, 0, 1, &b);
    reference.run(&kernel()).expect("reference run");
    (2..=5).map(|reg| reference.read_register(0, 0, reg)).collect()
}

mod properties {
    use super::*;
    use mastodon::StuckLane;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Sparse transient faults under TMR produce lane-exact agreement
        /// with the fault-free reference model on every backend: the
        /// majority vote strips every single-run fault, whether it lands
        /// in a NOR gate, a LUT query, or a word-serial ALU op.
        #[test]
        fn tmr_matches_the_fault_free_reference(seed in any::<u64>()) {
            let lanes = 64usize;
            for kind in DatapathKind::ALL {
                let want = reference_regs(kind, seed, lanes);
                let (a, b) = inputs(seed, lanes);
                let mut config = SimConfig::mpu(kind);
                config.fault.seed = Some(seed);
                config.fault.transient_rate = 1e-4;
                config.recovery.redundancy = Redundancy::Tmr;
                let (_, mut mpu) =
                    run_single(config, &kernel(), &[((0, 0, 0), a), ((0, 0, 1), b)])
                        .expect("TMR run");
                for (i, reg) in (2u8..=5).enumerate() {
                    let got = mpu.read_register(0, 0, reg).expect("read");
                    prop_assert_eq!(
                        &got[..lanes], &want[i][..lanes],
                        "{:?} seed {:#x} r{}", kind, seed, reg
                    );
                }
            }
        }

        /// DMR with bounded retry never passes corrupted data on any
        /// backend: a run either matches the fault-free reference
        /// lane-exactly or aborts after detection (the safe failure mode).
        #[test]
        fn dmr_matches_the_reference_or_aborts(seed in any::<u64>()) {
            let lanes = 64usize;
            for kind in DatapathKind::ALL {
                let want = reference_regs(kind, seed, lanes);
                let (a, b) = inputs(seed, lanes);
                let mut config = SimConfig::mpu(kind);
                config.fault.seed = Some(seed);
                config.fault.transient_rate = 1e-4;
                config.recovery.redundancy = Redundancy::Dmr;
                config.recovery.max_retries = 4;
                match run_single(config, &kernel(), &[((0, 0, 0), a), ((0, 0, 1), b)]) {
                    Err(_) => {} // detected, retries exhausted, escalated: safe
                    Ok((_, mut mpu)) => {
                        for (i, reg) in (2u8..=5).enumerate() {
                            let got = mpu.read_register(0, 0, reg).expect("read");
                            prop_assert_eq!(
                                &got[..lanes], &want[i][..lanes],
                                "{:?} seed {:#x} r{}: DMR passed corrupted data",
                                kind, seed, reg
                            );
                        }
                    }
                }
            }
        }

        /// A permanently stuck lane plus spare-lane remapping reproduces
        /// the reference result over the reduced logical capacity of each
        /// backend's native geometry.
        #[test]
        fn remap_matches_the_reference_at_reduced_capacity(
            seed in any::<u64>(),
            lane in 0usize..64,
            stuck_high in any::<bool>(),
        ) {
            let spare_lanes = 4usize;
            for kind in DatapathKind::ALL {
                let logical = lanes_for(kind) - spare_lanes;
                let want = reference_regs(kind, seed, logical);
                let (a, b) = inputs(seed, logical);
                let mut config = SimConfig::mpu(kind);
                config.fault.seed = Some(seed | 1);
                config.fault.stuck_lanes = vec![
                    StuckLane { mpu: 0, rfh: 0, vrf: 0, lane, value: stuck_high },
                ];
                config.recovery.remap = true;
                config.recovery.spare_lanes = spare_lanes;
                let (stats, mut mpu) =
                    run_single(config, &kernel(), &[((0, 0, 0), a), ((0, 0, 1), b)])
                        .expect("remapped run");
                prop_assert!(
                    stats.faults.dead_lanes >= 1,
                    "{:?}: self-test must flag lane {}", kind, lane
                );
                for (i, reg) in (2u8..=5).enumerate() {
                    let got = mpu.read_register(0, 0, reg).expect("read");
                    prop_assert_eq!(got.len(), logical);
                    prop_assert_eq!(
                        &got[..], &want[i][..logical],
                        "{:?} seed {:#x} r{}", kind, seed, reg
                    );
                }
            }
        }

        /// Arming the fault layer with every rate at zero is byte-identical
        /// to not arming it at all on every backend: same registers, same
        /// statistics.
        #[test]
        fn zero_rates_are_byte_identical_to_fault_free(seed in any::<u64>()) {
            let lanes = 64usize;
            for kind in DatapathKind::ALL {
                let (a, b) = inputs(seed, lanes);
                let clean_cfg = SimConfig::mpu(kind);
                let (clean_stats, mut clean) = run_single(
                    clean_cfg,
                    &kernel(),
                    &[((0, 0, 0), a.clone()), ((0, 0, 1), b.clone())],
                )
                .expect("clean run");
                let mut armed_cfg = SimConfig::mpu(kind);
                armed_cfg.fault.seed = Some(seed);
                let (armed_stats, mut armed) =
                    run_single(armed_cfg, &kernel(), &[((0, 0, 0), a), ((0, 0, 1), b)])
                        .expect("armed run");
                prop_assert_eq!(clean_stats, armed_stats);
                prop_assert_eq!(armed_stats.faults.injected, 0);
                for reg in 2u8..=5 {
                    prop_assert_eq!(
                        clean.read_register(0, 0, reg).expect("read"),
                        armed.read_register(0, 0, reg).expect("read"),
                        "{:?} seed {:#x} r{}", kind, seed, reg
                    );
                }
            }
        }
    }
}

/// Pinned-seed sweep on the pLUTo backend: TMR must eliminate silent data
/// corruption on the generated corpus (faults landing in LUT queries vote
/// out exactly like faults landing in bit-serial gates).
#[test]
fn pinned_seed_tmr_sweep_on_pluto_has_zero_sdc() {
    let report = run_sweep(&SweepConfig {
        backend: DatapathKind::Pluto,
        seed: 0x5EED,
        rate: 1e-4,
        trials: 8,
        policy: PolicyKind::Tmr,
    });
    assert!(report.trials > 0, "pinned corpus must classify trials: {report:?}");
    assert_eq!(report.sdc_trials, 0, "TMR SDC must be zero on pLUTo: {report:?}");
}
