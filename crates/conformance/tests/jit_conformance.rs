//! The trace-tier ("JIT") conformance suite:
//!
//! * a dedicated differential sweep over a disjoint seed range, proving
//!   the fused ensemble-trace tier byte-identical to the compiled and
//!   interpreted tiers and to the word-level reference model on every
//!   backend (`JIT_CONFORMANCE_CASES` overrides the case count);
//! * fallback canaries: bodies the trace tier must refuse to fuse (EFI
//!   loops, mid-body `GETMASK`, subroutine calls) and configurations that
//!   need per-instruction fidelity run on the per-instruction tier — and
//!   still produce the same results;
//! * the playback-refill accounting property (proptest): a straight-line
//!   body of `n` instructions charges exactly `ceil((n + 1) / entries) - 1`
//!   refills, and the trace tier reproduces the same charges.

use conformance::{check_case, generate, reproducer_text, shrink};
use mastodon::{run_single, EventLog, SimConfig, TraceKind};
use mpu_isa::{Instruction, LineNum, Program, RegId, VrfId};
use pum_backend::DatapathKind;

#[test]
fn three_tier_differential_suite() {
    let cases: u64 =
        std::env::var("JIT_CONFORMANCE_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(40);
    // A seed range disjoint from tests/conformance.rs so the two sweeps
    // compound rather than repeat (check_case covers compiled,
    // interpreted, and trace tiers on every shipped backend).
    for seed in 50_000..50_000 + cases {
        let case = generate(seed);
        if let Some(mismatch) = check_case(&case) {
            let (small, m) = shrink(&case, check_case);
            panic!("seed {seed}: {mismatch}\n{}", reproducer_text(&small, &m));
        }
    }
}

fn racer() -> SimConfig {
    SimConfig::mpu(DatapathKind::Racer)
}

fn asm(text: &str) -> Program {
    Program::parse_asm(text).expect("valid asm")
}

#[test]
fn straight_line_bodies_run_on_the_trace_tier() {
    let p = asm("COMPUTE h0 v0\nADD r0 r1 r2\nSETMASK r63\nINC r2 r3\nUNMASK\nCOMPUTE_DONE");
    let (_, mpu) = run_single(racer(), &p, &[((0, 0, 0), vec![5; 64])]).unwrap();
    assert_eq!(mpu.tier_counts(), (1, 0), "straight-line body must fuse");
}

#[test]
fn efi_loops_fall_back_to_the_compiled_tier() {
    // while (r0 > r1): r0 -= r2 — data-dependent trip count.
    let p = asm("COMPUTE h0 v0\n\
         CMPGT r0 r1\n\
         SETMASK r63\n\
         SUB r0 r2 r0\n\
         JUMP_COND 1\n\
         UNMASK\n\
         COMPUTE_DONE");
    let inputs: [((u16, u16, u8), Vec<u64>); 3] =
        [((0, 0, 0), vec![3; 64]), ((0, 0, 1), vec![0; 64]), ((0, 0, 2), vec![1; 64])];
    let (_, mut mpu) = run_single(racer(), &p, &inputs).unwrap();
    assert_eq!(mpu.tier_counts(), (0, 1), "EFI loop must not fuse");
    assert_eq!(mpu.read_register(0, 0, 0).unwrap(), vec![0; 64]);
}

#[test]
fn mid_body_getmask_falls_back() {
    let p = asm("COMPUTE h0 v0\nADD r0 r1 r2\nGETMASK r3\nCOMPUTE_DONE");
    let (_, mpu) = run_single(racer(), &p, &[]).unwrap();
    assert_eq!(mpu.tier_counts(), (0, 1), "mask readout must not fuse");
}

#[test]
fn subroutine_calls_fall_back() {
    let p = Program::from_instructions(vec![
        Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
        Instruction::Jump { target: LineNum(4) },
        Instruction::ComputeDone,
        Instruction::Return,
        Instruction::Unary { op: mpu_isa::UnaryOp::Inc, rs: RegId(0), rd: RegId(1) },
        Instruction::Return,
    ]);
    let (_, mut mpu) = run_single(racer(), &p, &[((0, 0, 0), vec![41; 64])]).unwrap();
    assert_eq!(mpu.tier_counts(), (0, 1), "JUMP/RETURN must not fuse");
    assert_eq!(mpu.read_register(0, 0, 1).unwrap(), vec![42; 64]);
}

#[test]
fn every_backend_agrees_across_tiers_on_a_predicated_body() {
    let p = asm("COMPUTE h0 v0\n\
         ADD r0 r1 r2\n\
         CMPGT r2 r0\n\
         SETMASK r63\n\
         SUB r2 r1 r3\n\
         UNMASK\n\
         INC r3 r4\n\
         COMPUTE_DONE");
    for kind in DatapathKind::ALL {
        let lanes = SimConfig::mpu(kind).datapath.geometry().lanes_per_vrf;
        let inputs: [((u16, u16, u8), Vec<u64>); 2] =
            [((0, 0, 0), (0..lanes as u64).collect()), ((0, 0, 1), vec![7; lanes])];
        let mut off = SimConfig::mpu(kind);
        off.trace_ensembles = false;
        let (want, mut m1) = run_single(off, &p, &inputs).unwrap();
        let (got, mut m2) = run_single(SimConfig::mpu(kind), &p, &inputs).unwrap();
        assert_eq!(m2.tier_counts(), (1, 0), "{kind:?}: body must fuse");
        assert_eq!(want, got, "{kind:?}: statistics must be bit-identical");
        for reg in 0..5 {
            assert_eq!(
                m1.read_register(0, 0, reg).unwrap(),
                m2.read_register(0, 0, reg).unwrap(),
                "{kind:?} r{reg}"
            );
        }
    }
}

mod playback_refill {
    use super::*;
    use proptest::prelude::*;

    /// A straight-line ensemble with `n` NOP body instructions.
    fn nop_body(n: usize) -> Program {
        let mut instrs = vec![Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) }];
        instrs.extend(std::iter::repeat_n(Instruction::Nop, n));
        instrs.push(Instruction::ComputeDone);
        Program::from_instructions(instrs)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The per-instruction tier charges exactly
        /// `ceil(body_len / entries) - 1` playback refills for a
        /// straight-line body (`body_len` counts the `COMPUTE_DONE`
        /// fetch), and the trace tier settles identical charges.
        #[test]
        fn refill_count_matches_the_closed_form(n in 1usize..200, entries in 1usize..=64) {
            let p = nop_body(n);
            let mut cfg = racer();
            cfg.playback_entries = entries;

            // Count actual refill events on the per-instruction tier (an
            // armed tracer forces the fallback path).
            let log = EventLog::new();
            let (tracer_stats, _) = mastodon::run_single_traced(
                cfg.clone(), &p, &[], None, Some(Box::new(log.clone())),
            ).unwrap();
            let refills = log
                .take()
                .iter()
                .filter(|ev| matches!(ev.kind, TraceKind::PlaybackRefill))
                .count();
            let body_len = n + 1; // n body instructions + COMPUTE_DONE
            prop_assert_eq!(refills, body_len.div_ceil(entries) - 1);

            // The trace tier reproduces the same charges.
            let (trace_stats, mpu) = run_single(cfg.clone(), &p, &[]).unwrap();
            prop_assert_eq!(mpu.tier_counts(), (1, 0));
            prop_assert_eq!(trace_stats, tracer_stats);

            // And so does the untraced per-instruction tier.
            let mut off = cfg;
            off.trace_ensembles = false;
            let (compiled_stats, _) = run_single(off, &p, &[]).unwrap();
            prop_assert_eq!(trace_stats, compiled_stats);
        }
    }
}
