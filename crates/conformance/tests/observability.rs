//! Observability conformance: across random generated programs, all three
//! backends, and both recipe-execution modes, (1) arming a tracer never
//! changes execution — lane values and per-MPU statistics are
//! byte-identical to a disarmed run — and (2) the attribution profile
//! built from the trace conserves every counter and energy field exactly.

use conformance::{generate, BACKENDS, BOX_RFHS, BOX_VRFS};
use mastodon::{EventLog, Profile, SimConfig, Stats, System, TraceEvent};
use proptest::prelude::*;
use pum_backend::DatapathKind;

/// Registers compared per VRF (mirrors the diff harness's comparison box).
const CMP_REGS: u8 = 14;

type LaneBox = Vec<((u16, u16, u8), Vec<u64>)>;

struct Observed {
    lanes: Vec<LaneBox>,
    per_mpu: Vec<Stats>,
    system: Stats,
    events: Vec<TraceEvent>,
}

/// Runs a generated case on the simulator, optionally traced. Cases whose
/// programs fail to lower or run (shrinker-style artifacts) return `None`
/// and are skipped — the point here is trace transparency, not validity.
fn run_case(kind: DatapathKind, interpret: bool, seed: u64, armed: bool) -> Option<Observed> {
    let case = generate(seed);
    let programs = case.programs().ok()?;
    let mut config = SimConfig::mpu(kind);
    config.interpret_recipes = interpret;
    let mut sys = System::new(config, case.mpus.len());
    let log = EventLog::new();
    if armed {
        sys.set_event_log(&log);
    }
    for (id, (mpu, program)) in case.mpus.iter().zip(&programs).enumerate() {
        sys.set_program(id, program.clone());
        for input in &mpu.inputs {
            sys.mpu_mut(id).write_register(input.rfh, input.vrf, input.reg, &input.values).ok()?;
        }
    }
    let system = sys.run().ok()?;
    let mut lanes = Vec::with_capacity(case.mpus.len());
    let mut per_mpu = Vec::with_capacity(case.mpus.len());
    for id in 0..case.mpus.len() {
        let mut lane_box = Vec::new();
        for rfh in 0..BOX_RFHS {
            for vrf in 0..BOX_VRFS {
                for reg in 0..CMP_REGS {
                    lane_box.push((
                        (rfh, vrf, reg),
                        sys.mpu_mut(id).read_register(rfh, vrf, reg).ok()?,
                    ));
                }
            }
        }
        lanes.push(lane_box);
        per_mpu.push(*sys.mpu_mut(id).stats());
    }
    Some(Observed { lanes, per_mpu, system, events: log.take() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tracing transparency and conservation over random programs: the
    /// armed run is byte-identical to the disarmed run, and folding the
    /// armed run's event deltas reproduces every [`Stats`] field exactly
    /// (including f64 energies, bit for bit — `Stats` derives
    /// `PartialEq`).
    #[test]
    fn tracing_is_transparent_and_profiles_conserve(seed in 0u64..4096) {
        for kind in BACKENDS {
            for interpret in [false, true] {
                let armed = run_case(kind, interpret, seed, true);
                let disarmed = run_case(kind, interpret, seed, false);
                let (armed, disarmed) = match (armed, disarmed) {
                    (Some(a), Some(d)) => (a, d),
                    (None, None) => continue,
                    _ => {
                        prop_assert!(false, "armed/disarmed runnability diverged \
                                             ({kind:?}, interpret={interpret}, seed={seed})");
                        unreachable!()
                    }
                };
                prop_assert_eq!(
                    &armed.lanes, &disarmed.lanes,
                    "lane values diverged ({:?}, interpret={}, seed={})", kind, interpret, seed
                );
                prop_assert_eq!(
                    &armed.per_mpu, &disarmed.per_mpu,
                    "per-MPU stats diverged ({:?}, interpret={}, seed={})", kind, interpret, seed
                );
                prop_assert_eq!(
                    armed.system, disarmed.system,
                    "system stats diverged ({:?}, interpret={}, seed={})", kind, interpret, seed
                );

                let profile = Profile::build(&armed.events);
                for m in &profile.mpus {
                    prop_assert_eq!(
                        &m.totals, &armed.per_mpu[m.mpu as usize],
                        "profile totals failed conservation for mpu{} \
                         ({:?}, interpret={}, seed={})", m.mpu, kind, interpret, seed
                    );
                }
                prop_assert_eq!(
                    profile.merged(), armed.system,
                    "merged profile failed conservation ({:?}, interpret={}, seed={})",
                    kind, interpret, seed
                );
            }
        }
    }
}
