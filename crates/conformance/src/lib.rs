//! Cross-backend differential fuzzing harness for the MPU stack.
//!
//! The harness closes the loop the ISSUE calls for: a seeded generator
//! ([`generate`]) produces random-but-valid multi-MPU programs over the
//! full Table II instruction set; [`check_case`] runs each one through the
//! word-level [`refmodel`] interpreter and through the cycle-accurate
//! simulator on all three Table III backends (RACER, MIMDRAM, Duality
//! Cache) over both the interpreted and compiled recipe paths, asserting
//! lane-exact register equality plus agreement on the architectural
//! counters; and [`shrink`] reduces any divergence to a short reproducer
//! rendered as ezpim text by [`reproducer_text`].
//!
//! Entry points:
//!
//! - `cargo test -p conformance` — bounded differential suite, round-trip
//!   properties, the injected-bug canary, and golden statistics snapshots.
//! - `cargo run -p conformance --bin fuzz_conformance -- --seed N --iters N`
//!   — open-ended fuzzing; on mismatch the shrunk reproducer is printed
//!   and written to `conformance-reproducer.txt`.

#![forbid(unsafe_code)]

pub mod case;
pub mod diff;
pub mod fault;
pub mod generate;
pub mod pipeline_case;
pub mod shrink;

pub use case::{reproducer_text, Case, CopyLine, Input, MpuCase, Stmt, Top};
pub use diff::{
    check_case, check_case_on, ref_geometry, reference_lanes, simulate, Tier, BACKENDS, TIERS,
};
pub use fault::{remap_recovers, render_report, run_sweep, PolicyKind, SweepConfig, SweepReport};
pub use generate::{generate, BOX_RFHS, BOX_VRFS};
pub use pipeline_case::{generate_pipeline_case, kops_to_stmts};
pub use shrink::shrink;
