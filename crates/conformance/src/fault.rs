//! Fault-coverage sweep: generated cases executed under seeded fault
//! injection with a recovery policy, classified against the fault-free
//! word-level reference model.
//!
//! Every trial runs one generated [`Case`](crate::Case) twice:
//!
//! 1. through the [`refmodel`] interpreter with no faults — the oracle;
//! 2. through the cycle-accurate simulator with the fault layer armed at
//!    the trial's seed and the sweep's per-micro-op transient rate, under
//!    one of three policies ([`PolicyKind`]).
//!
//! The outcome is classified per trial:
//!
//! * **correct** — the run finished and every architected register matches
//!   the oracle lane-exactly (no fault landed, the fault was masked, or
//!   the policy corrected it);
//! * **SDC** — silent data corruption: the run finished but some register
//!   differs from the oracle;
//! * **DUE** — detected unrecoverable error: the run aborted with
//!   `UncorrectedFault` (or another fault-rooted error) after exhausting
//!   its retry budget. Detected-but-not-corrected is the *safe* failure
//!   mode; SDC is the one redundancy exists to eliminate.
//!
//! [`run_sweep`] aggregates these into a [`SweepReport`];
//! [`remap_recovers`] separately proves that a permanent stuck-at lane
//! plus spare-lane remapping reproduces the reference result at reduced
//! logical capacity.

use crate::case::Case;
use crate::diff::{ref_geometry, LaneBox};
use crate::generate::{generate, BOX_RFHS, BOX_VRFS};
use mastodon::{Redundancy, SimConfig, StuckLane, System};
use mpu_isa::Program;
use pum_backend::DatapathKind;
use refmodel::RefSystem;
use std::fmt::Write as _;

/// Registers compared against the oracle (the division scratch registers
/// `r14`/`r15` are implementation-defined and excluded, matching the
/// differential harness).
const CMP_REGS: u8 = 14;

/// The recovery policy a sweep runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Faults injected, no detection or recovery: measures the raw SDC
    /// rate of the fault model (every surviving fault is silent).
    Inject,
    /// Dual modular redundancy with bounded retry, then escalation.
    Dmr,
    /// Triple modular redundancy with bitwise majority voting.
    Tmr,
}

impl PolicyKind {
    /// All sweepable policies, in report order.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Inject, PolicyKind::Dmr, PolicyKind::Tmr];

    /// The CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Inject => "inject",
            PolicyKind::Dmr => "dmr",
            PolicyKind::Tmr => "tmr",
        }
    }

    fn apply(self, config: &mut SimConfig) {
        match self {
            PolicyKind::Inject => {}
            PolicyKind::Dmr => {
                config.recovery.redundancy = Redundancy::Dmr;
                config.recovery.max_retries = 4;
            }
            PolicyKind::Tmr => {
                config.recovery.redundancy = Redundancy::Tmr;
            }
        }
    }
}

/// Parameters of one fault-coverage sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Backend the cases run on.
    pub backend: DatapathKind,
    /// Base seed; trial `t` uses case seed `seed + t` and arms the fault
    /// layer with the same value.
    pub seed: u64,
    /// Per-micro-op transient flip rate.
    pub rate: f64,
    /// Number of generated cases to run.
    pub trials: u64,
    /// Recovery policy under test.
    pub policy: PolicyKind,
}

/// Aggregated outcome of a sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepReport {
    /// Trials that ran to classification (incomparable cases are skipped).
    pub trials: u64,
    /// Generated cases skipped because the reference model rejects them.
    pub skipped: u64,
    /// Total transient faults that landed (sum of `stats.faults.injected`
    /// over successful runs; aborted runs don't report stats).
    pub injected: u64,
    /// Trials whose successful run reported at least one landed fault.
    pub faulty_trials: u64,
    /// Faults detected by the policy (sum of `stats.faults.detected`).
    pub detected: u64,
    /// Faults corrected by the policy (sum of `stats.faults.corrected`).
    pub corrected: u64,
    /// Trials that finished with every register matching the oracle.
    pub correct_trials: u64,
    /// Trials that finished with a register mismatch (silent corruption).
    pub sdc_trials: u64,
    /// Trials aborted by the policy after detection (safe failure).
    pub due_trials: u64,
    /// Trials whose run raised at least one detection event (aborted
    /// trials count separately as [`SweepReport::due_trials`]).
    pub detected_trials: u64,
}

impl SweepReport {
    /// Trials where a fault observably affected the run: silently
    /// corrupted, detected in flight, or aborted.
    pub fn affected_trials(&self) -> u64 {
        self.sdc_trials + self.due_trials + self.detected_trials
    }

    /// Fraction of affected trials the policy detected, in `[0, 1]`
    /// (1.0 when no trial was affected).
    pub fn detection_rate(&self) -> f64 {
        let affected = self.sdc_trials + self.due_trials + self.detected_trials;
        if affected == 0 {
            1.0
        } else {
            (self.detected_trials + self.due_trials) as f64 / affected as f64
        }
    }

    /// Fraction of classified trials that ended in silent corruption.
    pub fn sdc_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.sdc_trials as f64 / self.trials as f64
        }
    }
}

fn oracle_boxes(backend: DatapathKind, case: &Case, programs: &[Program]) -> Option<Vec<LaneBox>> {
    let mut sys = RefSystem::new(ref_geometry(backend), case.mpus.len());
    for (id, (mpu, program)) in case.mpus.iter().zip(programs).enumerate() {
        sys.set_program(id, program.clone());
        for input in &mpu.inputs {
            sys.mpu_mut(id).write_register(input.rfh, input.vrf, input.reg, &input.values);
        }
    }
    sys.run().ok()?;
    Some(
        (0..case.mpus.len())
            .map(|id| {
                box_keys()
                    .map(|key| (key, sys.mpu_mut(id).read_register(key.0, key.1, key.2)))
                    .collect()
            })
            .collect(),
    )
}

fn box_keys() -> impl Iterator<Item = (u16, u16, u8)> {
    (0..BOX_RFHS).flat_map(|rfh| {
        (0..BOX_VRFS).flat_map(move |vrf| (0..CMP_REGS).map(move |reg| (rfh, vrf, reg)))
    })
}

/// Runs one fault-coverage sweep and aggregates the per-trial outcomes.
pub fn run_sweep(cfg: &SweepConfig) -> SweepReport {
    let mut report = SweepReport::default();
    for t in 0..cfg.trials {
        let trial_seed = cfg.seed.wrapping_add(t);
        let case = generate(trial_seed);
        let programs = match case.programs() {
            Ok(p) => p,
            Err(_) => {
                report.skipped += 1;
                continue;
            }
        };
        let Some(oracle) = oracle_boxes(cfg.backend, &case, &programs) else {
            report.skipped += 1;
            continue;
        };

        let mut config = SimConfig::mpu(cfg.backend);
        config.fault.seed = Some(trial_seed);
        config.fault.transient_rate = cfg.rate;
        // A flip that lands in a loop-counter register can turn a bounded
        // loop into a runaway one; the watchdog bounds every trial. Its
        // aborts classify as DUE (the hang is detected, not silent).
        config.recovery.watchdog_instructions = Some(100_000);
        cfg.policy.apply(&mut config);

        let mut sys = System::new(config, case.mpus.len());
        let mut loaded = true;
        for (id, (mpu, program)) in case.mpus.iter().zip(&programs).enumerate() {
            sys.set_program(id, program.clone());
            for input in &mpu.inputs {
                loaded &= sys
                    .mpu_mut(id)
                    .write_register(input.rfh, input.vrf, input.reg, &input.values)
                    .is_ok();
            }
        }
        if !loaded {
            report.skipped += 1;
            continue;
        }
        report.trials += 1;
        match sys.run() {
            Err(_) => {
                // The policy detected a fault and escalated: safe failure.
                report.due_trials += 1;
            }
            Ok(stats) => {
                report.injected += stats.faults.injected;
                report.detected += stats.faults.detected;
                report.corrected += stats.faults.corrected;
                if stats.faults.injected > 0 {
                    report.faulty_trials += 1;
                }
                if stats.faults.detected > 0 {
                    report.detected_trials += 1;
                }
                let mut matches = true;
                'cmp: for (id, oracle_box) in oracle.iter().enumerate() {
                    for ((rfh, vrf, reg), want) in oracle_box {
                        match sys.mpu_mut(id).read_register(*rfh, *vrf, *reg) {
                            Ok(got) if &got == want => {}
                            _ => {
                                matches = false;
                                break 'cmp;
                            }
                        }
                    }
                }
                if matches {
                    report.correct_trials += 1;
                } else {
                    report.sdc_trials += 1;
                }
            }
        }
    }
    report
}

/// Renders a sweep report as the text block the `fault_sweep` binary
/// prints and uploads.
pub fn render_report(cfg: &SweepConfig, report: &SweepReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "policy={} backend={:?} seed={:#x} rate={:e} trials={}",
        cfg.policy.name(),
        cfg.backend,
        cfg.seed,
        cfg.rate,
        cfg.trials
    );
    let _ = writeln!(
        out,
        "  classified={} skipped={} faulty={} injected={} detected={} corrected={}",
        report.trials,
        report.skipped,
        report.faulty_trials,
        report.injected,
        report.detected,
        report.corrected
    );
    let _ = writeln!(
        out,
        "  correct={} sdc={} due={} detection_rate={:.4} sdc_rate={:.4}",
        report.correct_trials,
        report.sdc_trials,
        report.due_trials,
        report.detection_rate(),
        report.sdc_rate()
    );
    out
}

/// Proves permanent-fault recovery: a stuck-at lane plus spare-lane
/// remapping must reproduce the fault-free reference result at the
/// reduced logical capacity.
///
/// # Errors
///
/// Returns a description of the first divergence (or simulator error).
pub fn remap_recovers(backend: DatapathKind, seed: u64) -> Result<(), String> {
    let geometry = ref_geometry(backend);
    let lanes = geometry.lanes_per_vrf;
    let spare_lanes = 4usize;
    let logical = lanes - spare_lanes;
    let stuck_lane = (seed as usize) % lanes;

    let program =
        Program::parse_asm("COMPUTE h0 v0\nADD r0 r1 r2\nMUL r2 r1 r3\nSUB r3 r0 r4\nCOMPUTE_DONE")
            .map_err(|e| e.to_string())?;
    let a: Vec<u64> = (0..logical as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
    let b: Vec<u64> = (0..logical as u64).map(|i| i.wrapping_add(3)).collect();

    // Oracle: fault-free reference model over the logical lanes.
    let mut reference = refmodel::RefMpu::new(geometry, 0);
    reference.write_register(0, 0, 0, &a);
    reference.write_register(0, 0, 1, &b);
    reference.run(&program).map_err(|e| e.to_string())?;

    let mut config = SimConfig::mpu(backend);
    config.fault.seed = Some(seed);
    config.fault.stuck_lanes =
        vec![StuckLane { mpu: 0, rfh: 0, vrf: 0, lane: stuck_lane, value: (seed & 1) != 0 }];
    config.recovery.remap = true;
    config.recovery.spare_lanes = spare_lanes;
    let inputs = [((0u16, 0u16, 0u8), a), ((0, 0, 1), b)];
    let (stats, mut mpu) =
        mastodon::run_single(config, &program, &inputs).map_err(|e| e.to_string())?;
    if stats.faults.dead_lanes == 0 {
        return Err(format!("stuck lane {stuck_lane} was not flagged by the boot self-test"));
    }
    for reg in [2u8, 3, 4] {
        let want = reference.read_register(0, 0, reg);
        let got = mpu.read_register(0, 0, reg).map_err(|e| e.to_string())?;
        if got.len() != logical {
            return Err(format!(
                "r{reg}: expected {logical} logical lanes, simulator returned {}",
                got.len()
            ));
        }
        if got[..] != want[..logical] {
            let lane = got.iter().zip(&want).position(|(g, w)| g != w).unwrap_or(0);
            return Err(format!(
                "r{reg} lane {lane}: reference {:#x}, remapped simulator {:#x}",
                want[lane], got[lane]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_only_shows_silent_corruption() {
        let report = run_sweep(&SweepConfig {
            backend: DatapathKind::Racer,
            seed: 0x5EED,
            rate: 1e-3,
            trials: 8,
            policy: PolicyKind::Inject,
        });
        assert!(report.trials > 0);
        assert!(report.faulty_trials > 0, "rate 1e-3 must land faults: {report:?}");
        assert!(report.sdc_trials > 0, "inject-only must show SDC: {report:?}");
        assert_eq!(report.detected, 0, "no detection machinery under inject-only");
    }

    #[test]
    fn tmr_eliminates_sdc_on_the_smoke_corpus() {
        let report = run_sweep(&SweepConfig {
            backend: DatapathKind::Racer,
            seed: 0x5EED,
            rate: 1e-4,
            trials: 8,
            policy: PolicyKind::Tmr,
        });
        assert_eq!(report.sdc_trials, 0, "TMR must vote out transients: {report:?}");
        assert!(report.trials > 0);
    }

    #[test]
    fn dmr_detects_what_it_cannot_correct() {
        let report = run_sweep(&SweepConfig {
            backend: DatapathKind::Racer,
            seed: 0x5EED,
            rate: 1e-4,
            trials: 8,
            policy: PolicyKind::Dmr,
        });
        assert!(report.detection_rate() >= 0.99, "DMR detection: {report:?}");
        assert_eq!(report.sdc_trials, 0, "DMR + retry must not pass corrupted data: {report:?}");
    }

    #[test]
    fn remap_reproduces_the_reference_at_reduced_capacity() {
        for seed in [1u64, 2, 7] {
            remap_recovers(DatapathKind::Racer, seed).unwrap();
        }
    }
}
