//! Seeded random program generation over the full Table II compute set.
//!
//! Every generated case is valid and terminating by construction:
//!
//! * multi-step instructions (`MUL`/`MAC`/division) never alias their
//!   destination with a source (the ezpim builder would reject them);
//! * loop trip counts are bounded at 3 by the [`crate::case::while_prep`]
//!   masking sequence, and loop-control registers are removed from the
//!   write set of the loop body;
//! * the mask-save pool registers (`r10..r13`) are never written inside
//!   structured bodies, so a loop's captured enclosing mask is live for
//!   the whole construct;
//! * inter-MPU `SEND`/`RECV` pairs are appended to the participants'
//!   programs in one global total order — sends never block, so the
//!   earliest outstanding event can always make progress and the system
//!   never deadlocks.
//!
//! The same seed always generates the same case (the vendored `StdRng` is
//! a deterministic SplitMix64).

use crate::case::{Case, CopyLine, Input, MpuCase, Stmt, Top};
use ezpim::Cond;
use mpu_isa::{BinaryOp, CompareOp, InitValue, Instruction, RegId, UnaryOp, COND_REG};
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

/// Registers the generator may write (loop control registers are carved
/// out of this set per scope). `r10..r13` are the ezpim mask-save pool,
/// `r14`/`r15` the division scratch registers — both off limits.
const BASE_WRITABLE: [u16; 10] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9];

/// Exclusive upper bound of readable registers (mask-save registers are
/// readable — their contents are deterministic).
const READ_LIMIT: u16 = 14;

/// RFH/VRF box the generator uses (and the differential runner compares).
pub const BOX_RFHS: u16 = 4;
/// See [`BOX_RFHS`].
pub const BOX_VRFS: u16 = 4;

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.random_range(0..xs.len())]
}

fn readable(rng: &mut StdRng) -> RegId {
    RegId(rng.random_range(0..READ_LIMIT))
}

fn writable(rng: &mut StdRng, ws: &[u16]) -> RegId {
    RegId(*pick(rng, ws))
}

fn readable_not(rng: &mut StdRng, avoid: &[RegId]) -> RegId {
    loop {
        let r = readable(rng);
        if !avoid.contains(&r) {
            return r;
        }
    }
}

fn gen_op(rng: &mut StdRng, ws: &[u16]) -> Instruction {
    match rng.random_range(0..100u32) {
        0..=47 => {
            let op = *pick(rng, &BinaryOp::ALL);
            let rd = writable(rng, ws);
            match op {
                BinaryOp::Mul | BinaryOp::Mac => {
                    // Sources may alias each other (squaring) but not rd.
                    let rs = readable_not(rng, &[rd]);
                    let rt = readable_not(rng, &[rd]);
                    Instruction::Binary { op, rs, rt, rd }
                }
                BinaryOp::QDiv | BinaryOp::RDiv => {
                    let rs = readable_not(rng, &[rd]);
                    let rt = readable_not(rng, &[rd, rs]);
                    Instruction::Binary { op, rs, rt, rd }
                }
                BinaryOp::QRDiv => {
                    // The remainder overwrites rt, so rt is a destination
                    // too: distinct and writable.
                    let rt = loop {
                        let r = writable(rng, ws);
                        if r != rd {
                            break r;
                        }
                    };
                    let rs = readable_not(rng, &[rd, rt]);
                    Instruction::Binary { op, rs, rt, rd }
                }
                _ => Instruction::Binary { op, rs: readable(rng), rt: readable(rng), rd },
            }
        }
        48..=62 => Instruction::Unary {
            op: *pick(rng, &UnaryOp::ALL),
            rs: readable(rng),
            rd: writable(rng, ws),
        },
        63..=69 => Instruction::Compare {
            op: *pick(rng, &CompareOp::ALL),
            rs: readable(rng),
            rt: readable(rng),
        },
        70..=74 => Instruction::Fuzzy { rs: readable(rng), rt: readable(rng), rd: readable(rng) },
        75..=81 => {
            let rs = writable(rng, ws);
            let rt = loop {
                let r = writable(rng, ws);
                if r != rs {
                    break r;
                }
            };
            Instruction::Cas { rs, rt }
        }
        82..=89 => Instruction::Init {
            value: if rng.random_bool(0.5) { InitValue::One } else { InitValue::Zero },
            rd: writable(rng, ws),
        },
        90..=95 => Instruction::GetMask { rd: writable(rng, ws) },
        _ => Instruction::Nop,
    }
}

fn gen_cond(rng: &mut StdRng) -> Cond {
    let a = readable(rng);
    let b = readable(rng);
    match rng.random_range(0..7u32) {
        0 | 1 => Cond::Eq(a, b),
        2 | 3 => Cond::Gt(a, b),
        4 | 5 => Cond::Lt(a, b),
        _ => Cond::Fuzzy(a, b, readable(rng)),
    }
}

fn cond_instruction(c: Cond) -> Instruction {
    match c {
        Cond::Eq(rs, rt) => Instruction::Compare { op: CompareOp::Eq, rs, rt },
        Cond::Gt(rs, rt) => Instruction::Compare { op: CompareOp::Gt, rs, rt },
        Cond::Lt(rs, rt) => Instruction::Compare { op: CompareOp::Lt, rs, rt },
        Cond::Fuzzy(rs, rt, rd) => Instruction::Fuzzy { rs, rt, rd },
    }
}

fn take_distinct(rng: &mut StdRng, ws: &[u16], n: usize) -> Vec<u16> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let r = *pick(rng, ws);
        if !out.contains(&r) {
            out.push(r);
        }
    }
    out
}

fn gen_stmts(rng: &mut StdRng, depth: usize, levels: usize, ws: &[u16]) -> Vec<Stmt> {
    let max: u32 = if depth == 0 { 5 } else { 3 };
    let count = rng.random_range(1..=max);
    let mut out = Vec::new();
    for _ in 0..count {
        let roll = rng.random_range(0..100u32);
        if (55..73).contains(&roll) && levels > 0 {
            let cond = gen_cond(rng);
            let then = gen_stmts(rng, depth + 1, levels - 1, ws);
            if roll < 65 {
                out.push(Stmt::If { cond, then });
            } else {
                let otherwise = gen_stmts(rng, depth + 1, levels - 1, ws);
                out.push(Stmt::IfElse { cond, then, otherwise });
            }
        } else if (73..91).contains(&roll) && levels > 0 && ws.len() >= 6 {
            let regs = take_distinct(rng, ws, 3);
            let inner: Vec<u16> = ws.iter().copied().filter(|r| !regs.contains(r)).collect();
            let src = readable(rng);
            let body = gen_stmts(rng, depth + 1, levels - 1, &inner);
            if roll < 82 {
                out.push(Stmt::While {
                    src,
                    ctr: RegId(regs[0]),
                    one: RegId(regs[1]),
                    zero: RegId(regs[2]),
                    body,
                });
            } else {
                out.push(Stmt::For {
                    src,
                    ctr: RegId(regs[0]),
                    one: RegId(regs[1]),
                    lim: RegId(regs[2]),
                    body,
                });
            }
        } else if roll >= 91 && depth == 0 {
            // Raw predication: CMP*; SETMASK r63; ops; UNMASK. Only at the
            // top level of a body, where restoring to all-on is correct.
            out.push(Stmt::Op(cond_instruction(gen_cond(rng))));
            out.push(Stmt::Op(Instruction::SetMask { rs: COND_REG }));
            for _ in 0..rng.random_range(1..=3u32) {
                out.push(Stmt::Op(gen_op(rng, ws)));
            }
            out.push(Stmt::Op(Instruction::Unmask));
        } else {
            out.push(Stmt::Op(gen_op(rng, ws)));
        }
    }
    out
}

fn gen_members(rng: &mut StdRng) -> Vec<(u16, u16)> {
    let want = rng.random_range(1..=3usize);
    let mut members = Vec::with_capacity(want);
    while members.len() < want {
        let m = (rng.random_range(0..BOX_RFHS), rng.random_range(0..BOX_VRFS));
        if !members.contains(&m) {
            members.push(m);
        }
    }
    members
}

fn gen_copies(rng: &mut StdRng) -> Vec<CopyLine> {
    (0..rng.random_range(1..=2usize))
        .map(|_| CopyLine {
            src_vrf: rng.random_range(0..BOX_VRFS),
            rs: readable(rng),
            dst_vrf: rng.random_range(0..BOX_VRFS),
            rd: RegId(rng.random_range(0..10u16)),
        })
        .collect()
}

fn gen_pairs(rng: &mut StdRng) -> Vec<(u16, u16)> {
    (0..rng.random_range(1..=2usize))
        .map(|_| (rng.random_range(0..BOX_RFHS), rng.random_range(0..BOX_RFHS)))
        .collect()
}

fn gen_inputs(rng: &mut StdRng, mpu: &mut MpuCase) {
    for _ in 0..rng.random_range(2..=6usize) {
        let style = rng.random_range(0..4u32);
        let values: Vec<u64> = (0..64u64)
            .map(|lane| match style {
                0 => rng.next_u64(),
                1 => rng.random_range(0..8u64),
                2 => lane,
                _ => *pick(rng, &[0u64, 1, u64::MAX, lane]),
            })
            .collect();
        mpu.inputs.push(Input {
            rfh: rng.random_range(0..BOX_RFHS),
            vrf: rng.random_range(0..BOX_VRFS),
            reg: rng.random_range(0..10u16) as u8,
            values,
        });
    }
}

/// Generates the differential test case for `seed` (deterministic).
pub fn generate(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_mpus = *pick(&mut rng, &[1usize, 1, 1, 1, 2, 2, 3]);
    let mut mpus: Vec<MpuCase> = (0..n_mpus).map(|_| MpuCase::default()).collect();
    for mpu in &mut mpus {
        for _ in 0..rng.random_range(1..=3usize) {
            let top = match rng.random_range(0..10u32) {
                0..=6 => Top::Ensemble {
                    members: gen_members(&mut rng),
                    body: gen_stmts(&mut rng, 0, 2, &BASE_WRITABLE),
                },
                7 | 8 => Top::Move { pairs: gen_pairs(&mut rng), copies: gen_copies(&mut rng) },
                _ => Top::Sync,
            };
            mpu.tops.push(top);
        }
    }
    if n_mpus > 1 {
        // Communication events in one global total order (deadlock-free).
        for _ in 0..rng.random_range(0..=3usize) {
            let src = rng.random_range(0..n_mpus);
            let dst = loop {
                let d = rng.random_range(0..n_mpus);
                if d != src {
                    break d;
                }
            };
            mpus[src].tops.push(Top::Send {
                dst: dst as u16,
                pairs: gen_pairs(&mut rng),
                copies: gen_copies(&mut rng),
            });
            mpus[dst].tops.push(Top::Recv { src: src as u16 });
        }
    }
    for mpu in &mut mpus {
        gen_inputs(&mut rng, mpu);
    }
    Case { mpus }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(42), generate(42));
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn generated_cases_lower_cleanly() {
        for seed in 0..200 {
            let case = generate(seed);
            let programs = case.programs().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for p in &programs {
                p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn corpus_covers_the_instruction_classes() {
        let mut mnemonics = std::collections::BTreeSet::new();
        let mut multi_mpu = false;
        for seed in 0..300 {
            let case = generate(seed);
            multi_mpu |= case.mpus.len() > 1;
            for p in case.programs().unwrap() {
                for i in p.iter() {
                    mnemonics.insert(i.mnemonic());
                }
            }
        }
        for needed in [
            "ADD",
            "SUB",
            "MUL",
            "QDIV",
            "POPC",
            "LSHIFT",
            "CMPGT",
            "FUZZY",
            "CAS",
            "SETMASK",
            "GETMASK",
            "UNMASK",
            "JUMP_COND",
            "SEND",
            "RECV",
            "MEMCPY",
            "MPU_SYNC",
        ] {
            assert!(mnemonics.contains(needed), "corpus never generated {needed}: {mnemonics:?}");
        }
        assert!(multi_mpu, "corpus never generated a multi-MPU case");
    }

    #[test]
    fn round_trip_through_ezpim_text_is_exact() {
        for seed in 0..100 {
            let case = generate(seed);
            for (id, mpu) in case.mpus.iter().enumerate() {
                let direct = crate::case::lower(mpu).unwrap();
                let text = crate::case::print_mpu(mpu);
                let reparsed = ezpim::parse(&text)
                    .unwrap_or_else(|e| panic!("seed {seed} mpu {id}: {e}\n{text}"))
                    .assemble()
                    .unwrap();
                assert_eq!(direct, reparsed, "seed {seed} mpu {id}\n{text}");
            }
        }
    }
}
