//! Open-ended conformance fuzzer.
//!
//! ```text
//! fuzz_conformance [--seed N] [--iters N] [--seconds N]
//! ```
//!
//! Runs `iters` generated cases starting at `seed` (default 500 from seed
//! 0), or keeps going until `--seconds` elapse if given. On the first
//! divergence the case is shrunk and the reproducer is printed to stderr
//! and written to `conformance-reproducer.txt`; the process exits 1.

use conformance::{check_case, generate, reproducer_text, shrink};
use std::time::{Duration, Instant};

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn main() {
    let mut seed = 0u64;
    let mut iters = 500u64;
    let mut seconds: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            let v = args.next().and_then(|t| parse_u64(&t));
            v.unwrap_or_else(|| {
                eprintln!("{name} needs a numeric argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seed" => seed = value("--seed"),
            "--iters" => iters = value("--iters"),
            "--seconds" => seconds = Some(value("--seconds")),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: fuzz_conformance [--seed N] [--iters N] [--seconds N]");
                std::process::exit(2);
            }
        }
    }

    let deadline = seconds.map(|s| Instant::now() + Duration::from_secs(s));
    let mut ran = 0u64;
    loop {
        match deadline {
            Some(d) => {
                if Instant::now() >= d {
                    break;
                }
            }
            None => {
                if ran >= iters {
                    break;
                }
            }
        }
        let case_seed = seed.wrapping_add(ran);
        let case = generate(case_seed);
        if let Some(mismatch) = check_case(&case) {
            eprintln!("seed {case_seed:#x}: MISMATCH: {mismatch}");
            eprintln!("shrinking...");
            let (small, final_mismatch) = shrink(&case, check_case);
            let report =
                format!("# seed {case_seed:#x}\n{}", reproducer_text(&small, &final_mismatch));
            eprintln!("{report}");
            if let Err(e) = std::fs::write("conformance-reproducer.txt", &report) {
                eprintln!("could not write conformance-reproducer.txt: {e}");
            } else {
                eprintln!("reproducer written to conformance-reproducer.txt");
            }
            std::process::exit(1);
        }
        ran += 1;
        if ran.is_multiple_of(50) {
            eprintln!("{ran} cases OK (last seed {:#x})", case_seed);
        }
    }
    println!("conformance fuzzing passed: {ran} cases, seeds {seed:#x}..{:#x}", seed + ran);
}
