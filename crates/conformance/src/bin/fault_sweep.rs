//! Fault-coverage sweep driver.
//!
//! ```text
//! fault_sweep [--seed N] [--rate R] [--policy inject|dmr|tmr|all]
//!             [--trials N] [--backend racer|mimdram|dc|pluto|dpu|all]
//!             [--out FILE] [--assert]
//! ```
//!
//! Runs generated cases under seeded fault injection for each selected
//! policy and prints detection / correction / SDC rates against the
//! fault-free reference model, plus the permanent-fault remap check.
//! `--assert` turns the acceptance thresholds into the exit code:
//! inject-only must show nonzero landed faults and nonzero silent
//! corruption, DMR must detect at least 99% of affected trials with zero
//! SDC, TMR must have zero SDC, and remapping must reproduce the
//! reference result — anything else exits 1.

use conformance::{remap_recovers, render_report, run_sweep, PolicyKind, SweepConfig};
use pum_backend::DatapathKind;

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn main() {
    let mut seed = 0x5EEDu64;
    let mut rate = 1e-4f64;
    let mut trials = 16u64;
    let mut policies = PolicyKind::ALL.to_vec();
    let mut backends = vec![DatapathKind::Racer];
    let mut out: Option<String> = None;
    let mut assert_thresholds = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--seed" => {
                seed = parse_u64(&value("--seed")).unwrap_or_else(|| {
                    eprintln!("--seed needs a numeric argument");
                    std::process::exit(2);
                })
            }
            "--trials" => {
                trials = parse_u64(&value("--trials")).unwrap_or_else(|| {
                    eprintln!("--trials needs a numeric argument");
                    std::process::exit(2);
                })
            }
            "--rate" => {
                rate = value("--rate").parse().unwrap_or_else(|_| {
                    eprintln!("--rate needs a float argument");
                    std::process::exit(2);
                })
            }
            "--policy" => {
                policies = match value("--policy").as_str() {
                    "inject" => vec![PolicyKind::Inject],
                    "dmr" => vec![PolicyKind::Dmr],
                    "tmr" => vec![PolicyKind::Tmr],
                    "all" => PolicyKind::ALL.to_vec(),
                    other => {
                        eprintln!("unknown policy `{other}` (inject|dmr|tmr|all)");
                        std::process::exit(2);
                    }
                }
            }
            "--backend" => {
                backends = match value("--backend").as_str() {
                    "racer" => vec![DatapathKind::Racer],
                    "mimdram" => vec![DatapathKind::Mimdram],
                    "dc" | "dualitycache" => vec![DatapathKind::DualityCache],
                    "pluto" => vec![DatapathKind::Pluto],
                    "dpu" => vec![DatapathKind::Dpu],
                    "all" => DatapathKind::ALL.to_vec(),
                    other => {
                        eprintln!("unknown backend `{other}` (racer|mimdram|dc|pluto|dpu|all)");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => out = Some(value("--out")),
            "--assert" => assert_thresholds = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: fault_sweep [--seed N] [--rate R] [--policy inject|dmr|tmr|all] \
                     [--trials N] [--backend racer|mimdram|dc|pluto|dpu|all] [--out FILE] [--assert]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut report_text = String::new();
    let mut failures: Vec<String> = Vec::new();

    for &backend in &backends {
        for &policy in &policies {
            let cfg = SweepConfig { backend, seed, rate, trials, policy };
            let report = run_sweep(&cfg);
            let block = render_report(&cfg, &report);
            print!("{block}");
            report_text.push_str(&block);

            match policy {
                PolicyKind::Inject => {
                    if report.faulty_trials == 0 {
                        failures.push(format!("{backend:?}/inject: no faults landed in any trial"));
                    }
                    if report.sdc_trials == 0 {
                        failures.push(format!(
                            "{backend:?}/inject: expected nonzero silent corruption \
                             (faults are not observable)"
                        ));
                    }
                }
                PolicyKind::Dmr => {
                    if report.detection_rate() < 0.99 {
                        failures.push(format!(
                            "{backend:?}/dmr: detection rate {:.4} < 0.99",
                            report.detection_rate()
                        ));
                    }
                    if report.sdc_trials != 0 {
                        failures.push(format!(
                            "{backend:?}/dmr: {} SDC trials (must be 0)",
                            report.sdc_trials
                        ));
                    }
                }
                PolicyKind::Tmr => {
                    if report.sdc_trials != 0 {
                        failures.push(format!(
                            "{backend:?}/tmr: {} SDC trials (must be 0)",
                            report.sdc_trials
                        ));
                    }
                }
            }
        }

        let remap_line = match remap_recovers(backend, seed | 1) {
            Ok(()) => format!("remap backend={backend:?}: recovered (reference-exact)\n"),
            Err(e) => {
                failures.push(format!("{backend:?}/remap: {e}"));
                format!("remap backend={backend:?}: FAILED: {e}\n")
            }
        };
        print!("{remap_line}");
        report_text.push_str(&remap_line);
    }

    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &report_text) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("report written to {path}");
    }

    if assert_thresholds && !failures.is_empty() {
        for f in &failures {
            eprintln!("ASSERTION FAILED: {f}");
        }
        std::process::exit(1);
    }
}
