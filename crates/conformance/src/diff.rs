//! The differential runner: one case, executed by the word-level reference
//! model and by the cycle-accurate simulator on every shipped backend
//! (bit-serial NOR/MAJ/bitline, pLUTo LUT queries, word-serial DPU) over
//! all three execution tiers (compiled, interpreted, fused ensemble
//! trace), compared lane-exactly plus over the architectural counters the
//! reference model defines — and cross-tier over the full statistics.

use crate::case::Case;
use crate::generate::{BOX_RFHS, BOX_VRFS};
use mastodon::{RecipePool, SimConfig, Stats, System};
use mpu_isa::Program;
use pum_backend::{DatapathKind, DatapathModel};
use refmodel::{RefGeometry, RefSystem, RefTrace};
use std::sync::Arc;

/// Every shipped backend the differential matrix covers: the three
/// Table III substrates plus the pLUTo LUT-in-DRAM and UPMEM-style DPU
/// models.
pub const BACKENDS: [DatapathKind; 5] = DatapathKind::ALL;

/// Registers compared (the division scratch registers `r14`/`r15` hold
/// implementation-defined values and are excluded; the mask-save registers
/// `r10..r13` are deterministic and included).
const CMP_REGS: u8 = 14;

/// One MPU's comparison box: lane values for every `(rfh, vrf, reg)` the
/// generator can touch.
pub type LaneBox = Vec<((u16, u16, u8), Vec<u64>)>;

/// Derives the reference geometry for a backend from its Table III
/// datapath model.
pub fn ref_geometry(kind: DatapathKind) -> RefGeometry {
    let g = DatapathModel::for_kind(kind).geometry();
    RefGeometry {
        lanes_per_vrf: g.lanes_per_vrf,
        regs_per_vrf: g.regs_per_vrf,
        vrfs_per_rfh: g.vrfs_per_rfh,
        rfhs_per_mpu: g.rfhs_per_mpu,
        active_vrfs_per_rfh: g.active_vrfs_per_rfh,
        mpus_per_chip: g.mpus_per_chip,
    }
}

fn box_keys() -> impl Iterator<Item = (u16, u16, u8)> {
    (0..BOX_RFHS).flat_map(|rfh| {
        (0..BOX_VRFS).flat_map(move |vrf| (0..CMP_REGS).map(move |reg| (rfh, vrf, reg)))
    })
}

fn run_reference(
    kind: DatapathKind,
    case: &Case,
    programs: &[Program],
) -> Result<(Vec<LaneBox>, RefTrace), String> {
    let mut sys = RefSystem::new(ref_geometry(kind), case.mpus.len());
    for (id, (mpu, program)) in case.mpus.iter().zip(programs).enumerate() {
        sys.set_program(id, program.clone());
        for input in &mpu.inputs {
            sys.mpu_mut(id).write_register(input.rfh, input.vrf, input.reg, &input.values);
        }
    }
    sys.run().map_err(|e| e.to_string())?;
    let boxes = (0..case.mpus.len())
        .map(|id| {
            box_keys()
                .map(|key| (key, sys.mpu_mut(id).read_register(key.0, key.1, key.2)))
                .collect()
        })
        .collect();
    Ok((boxes, sys.total_trace()))
}

/// One execution tier of the simulator's compute path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Geometry-compiled recipes, dispatched per instruction.
    Compiled,
    /// Micro-op interpretation, dispatched per instruction.
    Interpreted,
    /// Fused ensemble traces where eligible (straight-line bodies), with
    /// per-instruction fallback elsewhere.
    Trace,
}

/// Every tier the differential matrix covers.
pub const TIERS: [Tier; 3] = [Tier::Compiled, Tier::Interpreted, Tier::Trace];

impl Tier {
    /// Short label used in mismatch reports.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Compiled => "compiled",
            Tier::Interpreted => "interpreted",
            Tier::Trace => "trace",
        }
    }
}

fn run_simulator(
    kind: DatapathKind,
    tier: Tier,
    case: &Case,
    programs: &[Program],
    pool: Option<&Arc<RecipePool>>,
) -> Result<(Vec<LaneBox>, Stats), String> {
    let mut config = SimConfig::mpu(kind);
    // Pin both tier knobs explicitly: the per-instruction tiers must not
    // silently ride the trace tier (whose default is on).
    config.interpret_recipes = tier == Tier::Interpreted;
    config.trace_ensembles = tier == Tier::Trace;
    let mut sys = match pool {
        Some(pool) => System::new_pooled(config, case.mpus.len(), pool),
        None => System::new(config, case.mpus.len()),
    };
    for (id, (mpu, program)) in case.mpus.iter().zip(programs).enumerate() {
        sys.set_program(id, program.clone());
        for input in &mpu.inputs {
            sys.mpu_mut(id)
                .write_register(input.rfh, input.vrf, input.reg, &input.values)
                .map_err(|e| e.to_string())?;
        }
    }
    let stats = sys.run().map_err(|e| e.to_string())?;
    let mut boxes = Vec::with_capacity(case.mpus.len());
    for id in 0..case.mpus.len() {
        boxes.push(
            box_keys()
                .map(|key| {
                    sys.mpu_mut(id)
                        .read_register(key.0, key.1, key.2)
                        .map(|v| (key, v))
                        .map_err(|e| e.to_string())
                })
                .collect::<Result<LaneBox, String>>()?,
        );
    }
    Ok((boxes, stats))
}

/// The reference model's comparison box for a case, or `None` if the case
/// doesn't lower or the reference run fails (shrinker artifacts). Used for
/// the cross-geometry agreement check.
pub fn reference_lanes(kind: DatapathKind, case: &Case) -> Option<Vec<LaneBox>> {
    let programs = case.programs().ok()?;
    run_reference(kind, case, &programs).ok().map(|(boxes, _)| boxes)
}

/// Differentially checks one case on one backend, optionally against a
/// shared (possibly deliberately corrupted) recipe pool.
///
/// Returns `Some(description)` on the first divergence between the
/// reference model and the simulator (either recipe path), or between the
/// interpreted and compiled paths' statistics. Returns `None` when all
/// agree — or when the reference model itself rejects the case (which
/// makes the case incomparable, not a simulator defect; the shrinker
/// relies on this to discard reductions that break program validity).
pub fn check_case_on(
    kind: DatapathKind,
    case: &Case,
    pool: Option<&Arc<RecipePool>>,
) -> Option<String> {
    let programs = match case.programs() {
        Ok(p) => p,
        Err(_) => return None,
    };
    let (ref_boxes, ref_trace) = match run_reference(kind, case, &programs) {
        Ok(v) => v,
        Err(_) => return None,
    };
    let mut compiled_stats: Option<Stats> = None;
    for tier in TIERS {
        let path = tier.label();
        let (boxes, stats) = match run_simulator(kind, tier, case, &programs, pool) {
            Ok(v) => v,
            Err(e) => {
                return Some(format!(
                    "{kind:?}/{path}: simulator error `{e}` where the reference model succeeded"
                ))
            }
        };
        for (id, (ref_box, sim_box)) in ref_boxes.iter().zip(&boxes).enumerate() {
            for (((rfh, vrf, reg), want), (_, got)) in ref_box.iter().zip(sim_box) {
                if want != got {
                    let lane = want.iter().zip(got).position(|(a, b)| a != b).unwrap_or(0);
                    return Some(format!(
                        "{kind:?}/{path}: mpu{id} h{rfh}.v{vrf}.r{reg} lane {lane}: \
                         reference {:#x}, simulator {:#x}",
                        want.get(lane).copied().unwrap_or(0),
                        got.get(lane).copied().unwrap_or(0),
                    ));
                }
            }
        }
        let counters = [
            ("instructions", ref_trace.instructions, stats.instructions),
            ("scheduler_waves", ref_trace.scheduler_waves, stats.scheduler_waves),
            ("messages_sent", ref_trace.messages_sent, stats.messages_sent),
            ("noc_bytes", ref_trace.noc_bytes, stats.noc_bytes),
        ];
        for (name, want, got) in counters {
            if want != got {
                return Some(format!(
                    "{kind:?}/{path}: architectural counter {name}: reference {want}, \
                     simulator {got}"
                ));
            }
        }
        match compiled_stats {
            None => compiled_stats = Some(stats),
            Some(prev) if prev != stats => {
                return Some(format!(
                    "{kind:?}: the {path} tier disagrees with the compiled tier on \
                     statistics:\n  compiled: {prev:?}\n  {path}: {stats:?}"
                ));
            }
            Some(_) => {}
        }
    }
    None
}

/// The full differential check: every backend via [`check_case_on`], plus
/// cross-geometry agreement of the reference model on the 64-lane common
/// prefix (inputs only populate 64 lanes; the extra lanes of the wider
/// geometries compute on zeros and never feed back into the prefix).
pub fn check_case(case: &Case) -> Option<String> {
    for kind in BACKENDS {
        if let Some(mismatch) = check_case_on(kind, case, None) {
            return Some(mismatch);
        }
    }
    let mut baseline: Option<(DatapathKind, Vec<LaneBox>)> = None;
    for kind in BACKENDS {
        let boxes = reference_lanes(kind, case)?;
        match &baseline {
            None => baseline = Some((kind, boxes)),
            Some((kind0, base)) => {
                for (id, (a, b)) in base.iter().zip(&boxes).enumerate() {
                    for (((rfh, vrf, reg), va), (_, vb)) in a.iter().zip(b) {
                        let pa = &va[..64.min(va.len())];
                        let pb = &vb[..64.min(vb.len())];
                        if pa != pb {
                            let lane = pa.iter().zip(pb).position(|(x, y)| x != y).unwrap_or(0);
                            return Some(format!(
                                "reference model disagrees across geometries \
                                 ({kind0:?} vs {kind:?}): mpu{id} h{rfh}.v{vrf}.r{reg} \
                                 lane {lane}: {:#x} vs {:#x}",
                                pa[lane], pb[lane]
                            ));
                        }
                    }
                }
            }
        }
    }
    None
}

/// Runs one case on one backend (compiled path, no pool) and returns its
/// statistics — the golden-snapshot probe.
///
/// # Errors
///
/// Returns a description if the case fails to lower or the run fails.
pub fn simulate(kind: DatapathKind, case: &Case) -> Result<Stats, String> {
    let programs = case.programs().map_err(|e| e.to_string())?;
    run_simulator(kind, Tier::Compiled, case, &programs, None).map(|(_, stats)| stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{MpuCase, Stmt, Top};
    use crate::generate::generate;
    use mpu_isa::{BinaryOp, Instruction, RegId};

    #[test]
    fn a_handwritten_case_passes_on_every_backend() {
        let case = Case {
            mpus: vec![MpuCase {
                tops: vec![Top::Ensemble {
                    members: vec![(0, 0)],
                    body: vec![Stmt::Op(Instruction::Binary {
                        op: BinaryOp::Add,
                        rs: RegId(0),
                        rt: RegId(1),
                        rd: RegId(2),
                    })],
                }],
                inputs: vec![
                    crate::case::Input { rfh: 0, vrf: 0, reg: 0, values: vec![40; 64] },
                    crate::case::Input { rfh: 0, vrf: 0, reg: 1, values: vec![2; 64] },
                ],
            }],
        };
        assert_eq!(check_case(&case), None);
    }

    #[test]
    fn a_small_generated_sample_passes() {
        // The broader sweep lives in tests/; this is the in-crate smoke.
        for seed in 0..4 {
            let case = generate(seed);
            if let Some(m) = check_case(&case) {
                panic!("seed {seed}: {m}\n{}", crate::case::reproducer_text(&case, &m));
            }
        }
    }

    #[test]
    fn unlowerable_cases_are_incomparable_not_failures() {
        // An orphan RECV deadlocks in the reference model too: no mismatch.
        let case = Case {
            mpus: vec![
                MpuCase { tops: vec![Top::Recv { src: 1 }], inputs: vec![] },
                MpuCase { tops: vec![Top::Sync], inputs: vec![] },
            ],
        };
        assert_eq!(check_case_on(DatapathKind::Racer, &case, None), None);
    }
}
