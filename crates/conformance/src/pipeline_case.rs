//! The dpapi-pipeline case family: conformance cases built from lowered
//! data-parallel pipelines instead of free-form random programs, so the
//! differential matrix (reference model vs every backend and execution
//! tier) sweeps exactly the program shapes the frontend emits —
//! predicated filter masks, log-depth reduce trees, Hillis–Steele scan
//! phases, and the validity-masking prologue of unflagged reductions.
//!
//! Inputs are shaped semi-faithfully: broadcast constant registers hold
//! their real constants and validity registers hold 0/1 lane flags (so
//! both sides of every predication fire on some lanes), while data and
//! zip registers carry unconstrained random lanes — broader coverage
//! than the values the host runtime would ever load.

use crate::case::{Case, Input, MpuCase, Stmt, Top};
use crate::generate::{BOX_RFHS, BOX_VRFS};
use dpapi::{random_pipeline, Kop};
use mpu_isa::RegId;
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

/// Converts a lowered pipeline body into conformance-case statements.
/// The two trees mirror the same ezpim builder surface, so the mapping
/// is one-to-one and lowering the converted case reproduces exactly the
/// frontend's own [`dpapi::Lowered::program`] binary.
pub fn kops_to_stmts(kops: &[Kop]) -> Vec<Stmt> {
    kops.iter()
        .map(|kop| match kop {
            Kop::Op(i) => Stmt::Op(*i),
            Kop::If { cond, then } => Stmt::If { cond: *cond, then: kops_to_stmts(then) },
            Kop::IfElse { cond, then, otherwise } => Stmt::IfElse {
                cond: *cond,
                then: kops_to_stmts(then),
                otherwise: kops_to_stmts(otherwise),
            },
        })
        .collect()
}

fn random_lanes(rng: &mut StdRng) -> Vec<u64> {
    let style = rng.random_range(0..3u32);
    (0..64u64)
        .map(|lane| match style {
            0 => rng.next_u64(),
            1 => rng.random_range(0..16u64),
            _ => lane,
        })
        .collect()
}

/// Generates the dpapi-pipeline differential case for `seed`: the stage
/// list is [`dpapi::random_pipeline`]`(seed)`, lowered and converted into
/// one ensemble per launch phase over 1–3 members of the comparison box,
/// with inputs for every register the lowering assigns (deterministic).
pub fn generate_pipeline_case(seed: u64) -> Case {
    let rp = random_pipeline(seed);
    let lowered = rp.pipeline.lower().expect("generated pipelines always lower");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0064_705f_6361_7365);
    let want = rng.random_range(1..=3usize);
    let mut members: Vec<(u16, u16)> = Vec::with_capacity(want);
    while members.len() < want {
        let m = (rng.random_range(0..BOX_RFHS), rng.random_range(0..BOX_VRFS));
        if !members.contains(&m) {
            members.push(m);
        }
    }

    let mut mpu = MpuCase {
        tops: vec![Top::Ensemble { members: members.clone(), body: kops_to_stmts(&lowered.kops) }],
        inputs: Vec::new(),
    };
    if let Some(p2) = &lowered.phase2 {
        // The real runtime loads the host-computed offsets between the
        // two launches; here both phases share one program and the
        // offsets are just another pre-loaded input.
        mpu.tops.push(Top::Ensemble { members: members.clone(), body: kops_to_stmts(&p2.kops) });
    }

    for &(rfh, vrf) in &members {
        let mut push = |reg: RegId, values: Vec<u64>| {
            mpu.inputs.push(Input { rfh, vrf, reg: reg.0 as u8, values });
        };
        for &d in &lowered.data {
            push(d, random_lanes(&mut rng));
        }
        for (_, regs) in &lowered.zips {
            for &z in regs {
                push(z, random_lanes(&mut rng));
            }
        }
        for &(c, value) in &lowered.consts {
            push(c, vec![value; 64]);
        }
        if let Some(v) = lowered.valid {
            push(v, (0..64).map(|_| rng.random_range(0..2u64)).collect());
        }
        if let Some(p2) = &lowered.phase2 {
            push(p2.offset, (0..64).map(|_| rng.random_range(0..1u64 << 32)).collect());
        }
    }
    Case { mpus: vec![mpu] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case;

    #[test]
    fn pipeline_cases_lower_and_validate() {
        for seed in 0..100u64 {
            let c = generate_pipeline_case(seed);
            let programs = c.programs().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for p in &programs {
                p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_pipeline_case(7), generate_pipeline_case(7));
    }

    /// The Kop → Stmt conversion is faithful: lowering the converted
    /// ensemble reproduces the frontend's own binary, phase by phase.
    #[test]
    fn conversion_matches_the_frontend_lowering() {
        let members = vec![(0u16, 0u16), (1, 1), (2, 0)];
        for seed in 0..50u64 {
            let lowered = random_pipeline(seed).pipeline.lower().unwrap();
            let phase1 = MpuCase {
                tops: vec![Top::Ensemble {
                    members: members.clone(),
                    body: kops_to_stmts(&lowered.kops),
                }],
                inputs: Vec::new(),
            };
            assert_eq!(
                case::lower(&phase1).unwrap(),
                lowered.program(&members).unwrap(),
                "seed {seed}: phase 1 diverges"
            );
            if let Some(p2) = &lowered.phase2 {
                let phase2 = MpuCase {
                    tops: vec![Top::Ensemble {
                        members: members.clone(),
                        body: kops_to_stmts(&p2.kops),
                    }],
                    inputs: Vec::new(),
                };
                assert_eq!(
                    case::lower(&phase2).unwrap(),
                    lowered.phase2_program(&members).unwrap().unwrap(),
                    "seed {seed}: phase 2 diverges"
                );
            }
        }
    }

    /// Pipeline cases round-trip through the ezpim text format like every
    /// other case family.
    #[test]
    fn pipeline_cases_round_trip_through_text() {
        for seed in 0..30u64 {
            let c = generate_pipeline_case(seed);
            for (id, mpu) in c.mpus.iter().enumerate() {
                let direct = case::lower(mpu).expect("lower");
                let text = case::print_mpu(mpu);
                let reparsed = ezpim::parse(&text)
                    .unwrap_or_else(|e| panic!("seed {seed} mpu {id}: {e}\n{text}"))
                    .assemble()
                    .expect("assemble");
                assert_eq!(direct, reparsed, "seed {seed} mpu {id}\n{text}");
            }
        }
    }
}
