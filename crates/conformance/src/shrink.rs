//! Greedy case minimizer: keeps applying the smallest structural edit that
//! still reproduces the mismatch until no edit helps, so every fuzzing
//! failure ships as a short ezpim reproducer instead of a 100-instruction
//! haystack.
//!
//! Every candidate edit preserves the generator's invariants by
//! construction — loop trip-count machinery lives inside the `While`/`For`
//! nodes, so deleting or flattening statements can never produce an
//! unbounded loop — and the predicate re-validates each candidate, so
//! edits that break SEND/RECV pairing simply fail to reproduce and are
//! discarded.

use crate::case::{Case, Stmt, Top};

/// Upper bound on predicate evaluations per shrink, so pathological cases
/// terminate promptly.
const MAX_EVALS: usize = 2000;

/// Lexicographic size of a case: lowered instruction count first (the
/// number the ISSUE acceptance criterion bounds), then tree nodes, then
/// input weight. Cases that fail to lower sort last.
fn size(case: &Case) -> (usize, usize, usize) {
    (case.lowered_len().unwrap_or(usize::MAX), case.node_count(), case.input_weight())
}

/// Minimizes `case` while `predicate` keeps returning `Some(mismatch)`.
///
/// Returns the smallest reproducing case found together with the mismatch
/// description it produced. The original case must satisfy the predicate.
pub fn shrink<F>(case: &Case, mut predicate: F) -> (Case, String)
where
    F: FnMut(&Case) -> Option<String>,
{
    let mut best = case.clone();
    let mut mismatch =
        predicate(&best).expect("shrink() requires a case that satisfies the predicate");
    let mut evals = 1usize;
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if evals >= MAX_EVALS {
                return (best, mismatch);
            }
            if size(&candidate) >= size(&best) {
                continue;
            }
            evals += 1;
            if let Some(m) = predicate(&candidate) {
                best = candidate;
                mismatch = m;
                improved = true;
                break;
            }
        }
        if !improved {
            return (best, mismatch);
        }
    }
}

/// All one-step reductions of a case, roughly largest-win first.
fn candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();

    // 1. Remove a matched SEND/RECV pair (k-th send src->dst with the k-th
    //    Recv{src} on the destination), keeping the comm protocol balanced.
    for (src, mpu) in case.mpus.iter().enumerate() {
        let mut send_ordinal = std::collections::HashMap::new();
        for (ti, top) in mpu.tops.iter().enumerate() {
            let Top::Send { dst, .. } = top else { continue };
            let dst = *dst as usize;
            if dst == src || dst >= case.mpus.len() {
                continue;
            }
            let k = {
                let e = send_ordinal.entry(dst).or_insert(0usize);
                let k = *e;
                *e += 1;
                k
            };
            let Some(ri) = case.mpus[dst]
                .tops
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t, Top::Recv { src: s } if *s as usize == src))
                .map(|(i, _)| i)
                .nth(k)
            else {
                continue;
            };
            let mut c = case.clone();
            c.mpus[src].tops.remove(ti);
            c.mpus[dst].tops.remove(ri);
            out.push(c);
        }
    }

    // 2. Remove a whole non-comm top-level block.
    for (id, mpu) in case.mpus.iter().enumerate() {
        for (ti, top) in mpu.tops.iter().enumerate() {
            if matches!(top, Top::Send { .. } | Top::Recv { .. }) {
                continue;
            }
            let mut c = case.clone();
            c.mpus[id].tops.remove(ti);
            out.push(c);
        }
    }

    // 3. Drop a trailing empty MPU no other MPU communicates with.
    if case.mpus.len() > 1 {
        let last = case.mpus.len() - 1;
        let referenced = case.mpus[..last].iter().flat_map(|m| &m.tops).any(|t| match t {
            Top::Send { dst, .. } => *dst as usize == last,
            Top::Recv { src } => *src as usize == last,
            _ => false,
        });
        if case.mpus[last].tops.is_empty() && !referenced {
            let mut c = case.clone();
            c.mpus.pop();
            out.push(c);
        }
    }

    // 4. Trim ensemble members and move/send copy pairs.
    for (id, mpu) in case.mpus.iter().enumerate() {
        for (ti, top) in mpu.tops.iter().enumerate() {
            match top {
                Top::Ensemble { members, .. } if members.len() > 1 => {
                    for mi in 0..members.len() {
                        let mut c = case.clone();
                        if let Top::Ensemble { members, .. } = &mut c.mpus[id].tops[ti] {
                            members.remove(mi);
                        }
                        out.push(c);
                    }
                }
                Top::Move { pairs, .. } | Top::Send { pairs, .. } if pairs.len() > 1 => {
                    for pi in 0..pairs.len() {
                        let mut c = case.clone();
                        match &mut c.mpus[id].tops[ti] {
                            Top::Move { pairs, copies } | Top::Send { pairs, copies, .. } => {
                                pairs.remove(pi);
                                copies.remove(pi);
                            }
                            _ => unreachable!(),
                        }
                        out.push(c);
                    }
                }
                _ => {}
            }
        }
    }

    // 5. Statement-level edits inside ensemble bodies.
    for (id, mpu) in case.mpus.iter().enumerate() {
        for (ti, top) in mpu.tops.iter().enumerate() {
            let Top::Ensemble { body, .. } = top else { continue };
            for variant in body_variants(body) {
                let mut c = case.clone();
                if let Top::Ensemble { body, .. } = &mut c.mpus[id].tops[ti] {
                    *body = variant;
                }
                out.push(c);
            }
        }
    }

    // 6. Simplify inputs: drop one, zero its lanes, or truncate to lane 0.
    for (id, mpu) in case.mpus.iter().enumerate() {
        for ii in 0..mpu.inputs.len() {
            let mut c = case.clone();
            c.mpus[id].inputs.remove(ii);
            out.push(c);
            let input = &mpu.inputs[ii];
            if input.values.iter().any(|&v| v != 0) {
                let mut c = case.clone();
                c.mpus[id].inputs[ii].values.iter_mut().for_each(|v| *v = 0);
                out.push(c);
            }
            if input.values.len() > 1 {
                let mut c = case.clone();
                c.mpus[id].inputs[ii].values.truncate(1);
                out.push(c);
            }
        }
    }

    out
}

/// One-step reductions of a statement list: remove a statement, flatten a
/// control node into (one of) its bodies, or recurse into a child body.
fn body_variants(body: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for (i, stmt) in body.iter().enumerate() {
        let rebuild = |replacement: Vec<Stmt>| {
            let mut b = body.to_vec();
            b.splice(i..=i, replacement);
            b
        };
        // Removal (valid even if it empties the body: `lower` tolerates
        // empty ensembles, and empty-body lowering still terminates).
        out.push(rebuild(Vec::new()));
        match stmt {
            Stmt::Op(_) => {}
            Stmt::If { cond, then } => {
                out.push(rebuild(then.clone()));
                for v in body_variants(then) {
                    out.push(rebuild(vec![Stmt::If { cond: *cond, then: v }]));
                }
            }
            Stmt::IfElse { cond, then, otherwise } => {
                out.push(rebuild(then.clone()));
                out.push(rebuild(otherwise.clone()));
                out.push(rebuild(vec![Stmt::If { cond: *cond, then: then.clone() }]));
                for v in body_variants(then) {
                    out.push(rebuild(vec![Stmt::IfElse {
                        cond: *cond,
                        then: v,
                        otherwise: otherwise.clone(),
                    }]));
                }
                for v in body_variants(otherwise) {
                    out.push(rebuild(vec![Stmt::IfElse {
                        cond: *cond,
                        then: then.clone(),
                        otherwise: v,
                    }]));
                }
            }
            Stmt::While { src, ctr, one, zero, body: inner } => {
                out.push(rebuild(inner.clone()));
                for v in body_variants(inner) {
                    out.push(rebuild(vec![Stmt::While {
                        src: *src,
                        ctr: *ctr,
                        one: *one,
                        zero: *zero,
                        body: v,
                    }]));
                }
            }
            Stmt::For { src, ctr, one, lim, body: inner } => {
                out.push(rebuild(inner.clone()));
                for v in body_variants(inner) {
                    out.push(rebuild(vec![Stmt::For {
                        src: *src,
                        ctr: *ctr,
                        one: *one,
                        lim: *lim,
                        body: v,
                    }]));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::MpuCase;
    use mpu_isa::{BinaryOp, Instruction, RegId};

    fn op(rd: u16) -> Stmt {
        Stmt::Op(Instruction::Binary {
            op: BinaryOp::Add,
            rs: RegId(0),
            rt: RegId(1),
            rd: RegId(rd),
        })
    }

    /// A predicate that "fails" whenever the case still contains an ADD
    /// writing r5 — shrinking should strip everything else away.
    fn has_marker(case: &Case) -> Option<String> {
        fn stmt_has(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Op(Instruction::Binary { op: BinaryOp::Add, rd, .. }) => rd.0 == 5,
                Stmt::Op(_) => false,
                Stmt::If { then, .. } => stmt_has(then),
                Stmt::IfElse { then, otherwise, .. } => stmt_has(then) || stmt_has(otherwise),
                Stmt::While { body, .. } | Stmt::For { body, .. } => stmt_has(body),
            })
        }
        case.mpus
            .iter()
            .flat_map(|m| &m.tops)
            .any(|t| matches!(t, Top::Ensemble { body, .. } if stmt_has(body)))
            .then(|| "marker present".to_string())
    }

    #[test]
    fn shrinks_to_the_single_offending_statement() {
        let case = Case {
            mpus: vec![MpuCase {
                tops: vec![
                    Top::Ensemble { members: vec![(0, 0), (1, 0)], body: vec![op(2), op(3)] },
                    Top::Sync,
                    Top::Ensemble {
                        members: vec![(0, 0)],
                        body: vec![
                            op(4),
                            Stmt::If {
                                cond: ezpim::Cond::Gt(RegId(0), RegId(1)),
                                then: vec![op(5), op(6)],
                            },
                        ],
                    },
                ],
                inputs: vec![crate::case::Input { rfh: 0, vrf: 0, reg: 0, values: vec![7; 64] }],
            }],
        };
        let (small, m) = shrink(&case, has_marker);
        assert_eq!(m, "marker present");
        // One ensemble, one member, exactly the marker statement, no input.
        assert_eq!(small.mpus.len(), 1);
        assert_eq!(small.mpus[0].tops.len(), 1);
        let Top::Ensemble { members, body } = &small.mpus[0].tops[0] else {
            panic!("expected ensemble, got {:?}", small.mpus[0].tops[0]);
        };
        assert_eq!(members.len(), 1);
        assert_eq!(body.len(), 1);
        assert!(matches!(
            body[0],
            Stmt::Op(Instruction::Binary { op: BinaryOp::Add, rd: RegId(5), .. })
        ));
        assert!(small.mpus[0].inputs.is_empty());
    }

    #[test]
    fn comm_pairs_are_removed_together() {
        let copy = crate::case::CopyLine { src_vrf: 0, rs: RegId(0), dst_vrf: 0, rd: RegId(1) };
        let case = Case {
            mpus: vec![
                MpuCase {
                    tops: vec![
                        Top::Ensemble { members: vec![(0, 0)], body: vec![op(5)] },
                        Top::Send { dst: 1, pairs: vec![(0, 0)], copies: vec![copy] },
                    ],
                    inputs: vec![],
                },
                MpuCase { tops: vec![Top::Recv { src: 0 }], inputs: vec![] },
            ],
        };
        let (small, _) = shrink(&case, has_marker);
        // The send/recv pair and the now-orphaned second MPU are both gone.
        assert_eq!(small.mpus.len(), 1);
        assert!(small.mpus[0].tops.iter().all(|t| !matches!(t, Top::Send { .. })));
    }
}
