//! The conformance case model: a structured, always-terminating subset of
//! ezpim programs over one or more MPUs, with three interchangeable views —
//! a tree ([`Case`]), lowered Table II binaries ([`Case::programs`]), and
//! ezpim source text ([`Case::to_text`]) that round-trips through the
//! textual parser.
//!
//! # Termination by construction
//!
//! Dynamic loops are the only source of unbounded execution, so the model
//! does not carry free-form `while` conditions. Instead [`Stmt::While`] and
//! [`Stmt::For`] own their complete trip-count machinery: the bound is a
//! data register masked down to at most 3 (`ctr = src & 3`), the decrement
//! (or the builder's increment) is part of the node, and the loop-control
//! registers are excluded from the write set of the loop body by the
//! generator. A shrinker can delete body statements or flatten a loop to
//! its body, but it can never delete just the decrement and hang the test.

use ezpim::{Cond, EzError, EzProgram};
use mpu_isa::{BinaryOp, InitValue, Instruction, Program, RegId, UnaryOp};
use std::fmt::Write as _;

/// One lowered `MEMCPY` line of a `move` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyLine {
    /// Source VRF within each source RFH.
    pub src_vrf: u16,
    /// Source register.
    pub rs: RegId,
    /// Destination VRF within each destination RFH.
    pub dst_vrf: u16,
    /// Destination register.
    pub rd: RegId,
}

/// A body statement of a compute ensemble.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A bare compute/mask instruction (also used for the raw
    /// `CMP*; SETMASK r63; ...; UNMASK` predication pattern).
    Op(Instruction),
    /// `if (cond) { then }`.
    If {
        /// Branch condition.
        cond: Cond,
        /// Predicated body.
        then: Vec<Stmt>,
    },
    /// `if (cond) { then } else { otherwise }`.
    IfElse {
        /// Branch condition.
        cond: Cond,
        /// Taken body.
        then: Vec<Stmt>,
        /// Not-taken body.
        otherwise: Vec<Stmt>,
    },
    /// Bounded dynamic loop: `ctr = src & 3; while (ctr > 0) { body; ctr -= 1 }`.
    ///
    /// The prep sequence and the trailing decrement are emitted by the
    /// lowering as part of this node (see [`while_prep`]); `ctr`, `one`
    /// and `zero` must not be written by `body`.
    While {
        /// Register whose value (masked to 2 bits) seeds the trip count.
        src: RegId,
        /// Loop counter register.
        ctr: RegId,
        /// Register holding the constant 1.
        one: RegId,
        /// Register holding the constant 0 (transiently the mask 3).
        zero: RegId,
        /// Loop body (decrement excluded).
        body: Vec<Stmt>,
    },
    /// Bounded counted loop: `lim = src & 3; for (ctr = 0; ctr < lim) { body }`.
    For {
        /// Register whose value (masked to 2 bits) seeds the limit.
        src: RegId,
        /// Counter register (initialized by the builder's `for_loop`).
        ctr: RegId,
        /// Register holding the constant 1.
        one: RegId,
        /// Limit register.
        lim: RegId,
        /// Loop body (increment excluded).
        body: Vec<Stmt>,
    },
}

/// One top-level construct of an MPU's program.
#[derive(Debug, Clone, PartialEq)]
pub enum Top {
    /// A compute ensemble over `(rfh, vrf)` members.
    Ensemble {
        /// Wave members.
        members: Vec<(u16, u16)>,
        /// Ensemble body.
        body: Vec<Stmt>,
    },
    /// A local transfer ensemble.
    Move {
        /// `(src_rfh, dst_rfh)` pairs.
        pairs: Vec<(u16, u16)>,
        /// The copies applied to every pair.
        copies: Vec<CopyLine>,
    },
    /// An inter-MPU `SEND` block with a single move block.
    Send {
        /// Destination MPU id.
        dst: u16,
        /// `(local_src_rfh, remote_dst_rfh)` pairs.
        pairs: Vec<(u16, u16)>,
        /// The copies applied to every pair.
        copies: Vec<CopyLine>,
    },
    /// `RECV` from the named MPU.
    Recv {
        /// Source MPU id.
        src: u16,
    },
    /// `MPU_SYNC`.
    Sync,
}

/// An initial register value loaded over the host/DMA path before the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Input {
    /// Target RFH.
    pub rfh: u16,
    /// Target VRF.
    pub vrf: u16,
    /// Target register.
    pub reg: u8,
    /// Lane values (64 lanes — the common prefix of every geometry).
    pub values: Vec<u64>,
}

/// One MPU's program and inputs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MpuCase {
    /// Top-level constructs, in program order.
    pub tops: Vec<Top>,
    /// Initial register contents.
    pub inputs: Vec<Input>,
}

/// A complete differential test case: coupled programs for `mpus.len()`
/// MPUs plus their initial data.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Per-MPU programs and inputs; the index is the MPU id.
    pub mpus: Vec<MpuCase>,
}

/// The fixed prep sequence of a [`Stmt::While`] node:
/// `one = 1; zero = 2; zero |= one (== 3); ctr = src & zero; zero = 0`.
pub fn while_prep(src: RegId, ctr: RegId, one: RegId, zero: RegId) -> [Instruction; 5] {
    [
        Instruction::Init { value: InitValue::One, rd: one },
        Instruction::Unary { op: UnaryOp::LShift, rs: one, rd: zero },
        Instruction::Binary { op: BinaryOp::Or, rs: zero, rt: one, rd: zero },
        Instruction::Binary { op: BinaryOp::And, rs: src, rt: zero, rd: ctr },
        Instruction::Init { value: InitValue::Zero, rd: zero },
    ]
}

/// The fixed trailing decrement of a [`Stmt::While`] body.
pub fn while_dec(ctr: RegId, one: RegId) -> Instruction {
    Instruction::Binary { op: BinaryOp::Sub, rs: ctr, rt: one, rd: ctr }
}

/// The fixed prep sequence of a [`Stmt::For`] node:
/// `one = 1; lim = 2; lim |= one (== 3); lim = src & lim`.
pub fn for_prep(src: RegId, one: RegId, lim: RegId) -> [Instruction; 4] {
    [
        Instruction::Init { value: InitValue::One, rd: one },
        Instruction::Unary { op: UnaryOp::LShift, rs: one, rd: lim },
        Instruction::Binary { op: BinaryOp::Or, rs: lim, rt: one, rd: lim },
        Instruction::Binary { op: BinaryOp::And, rs: src, rt: lim, rd: lim },
    ]
}

fn emit_stmts(b: &mut ezpim::Body<'_>, stmts: &[Stmt]) {
    for stmt in stmts {
        match stmt {
            Stmt::Op(i) => {
                b.op(*i);
            }
            Stmt::If { cond, then } => {
                b.if_then(*cond, |b| emit_stmts(b, then));
            }
            Stmt::IfElse { cond, then, otherwise } => {
                b.if_else(*cond, |b| emit_stmts(b, then), |b| emit_stmts(b, otherwise));
            }
            Stmt::While { src, ctr, one, zero, body } => {
                for i in while_prep(*src, *ctr, *one, *zero) {
                    b.op(i);
                }
                b.while_loop(Cond::Gt(*ctr, *zero), |b| {
                    emit_stmts(b, body);
                    b.op(while_dec(*ctr, *one));
                });
            }
            Stmt::For { src, ctr, one, lim, body } => {
                for i in for_prep(*src, *one, *lim) {
                    b.op(i);
                }
                b.for_loop(*ctr, *lim, |b| emit_stmts(b, body));
            }
        }
    }
}

/// Lowers one MPU's case to a validated Table II binary via the ezpim
/// builder (identical to what parsing [`print_mpu`]'s output produces).
///
/// # Errors
///
/// Propagates builder errors (mask-pool exhaustion, aliasing) — the
/// generator never produces them, but shrunk or hand-written cases might.
pub fn lower(mpu: &MpuCase) -> Result<Program, EzError> {
    let mut ez = EzProgram::new();
    for top in &mpu.tops {
        match top {
            Top::Ensemble { members, body } => {
                ez.ensemble(members, |b| emit_stmts(b, body))?;
            }
            Top::Move { pairs, copies } => {
                ez.transfer(pairs, |t| {
                    for c in copies {
                        t.memcpy(c.src_vrf, c.rs, c.dst_vrf, c.rd);
                    }
                });
            }
            Top::Send { dst, pairs, copies } => {
                ez.send(*dst, |s| {
                    s.transfer(pairs, |t| {
                        for c in copies {
                            t.memcpy(c.src_vrf, c.rs, c.dst_vrf, c.rd);
                        }
                    });
                });
            }
            Top::Recv { src } => {
                ez.recv(*src);
            }
            Top::Sync => {
                ez.sync();
            }
        }
    }
    ez.assemble()
}

fn cond_text(c: &Cond) -> String {
    match *c {
        Cond::Eq(a, b) => format!("r{} == r{}", a.0, b.0),
        Cond::Gt(a, b) => format!("r{} > r{}", a.0, b.0),
        Cond::Lt(a, b) => format!("r{} < r{}", a.0, b.0),
        Cond::Fuzzy(a, b, skip) => format!("r{} ~= r{} skip r{}", a.0, b.0, skip.0),
    }
}

fn print_stmts(out: &mut String, stmts: &[Stmt], indent: usize) {
    let pad = "    ".repeat(indent);
    for stmt in stmts {
        match stmt {
            Stmt::Op(i) => {
                let _ = writeln!(out, "{pad}{i}");
            }
            Stmt::If { cond, then } => {
                let _ = writeln!(out, "{pad}if {} {{", cond_text(cond));
                print_stmts(out, then, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::IfElse { cond, then, otherwise } => {
                let _ = writeln!(out, "{pad}if {} {{", cond_text(cond));
                print_stmts(out, then, indent + 1);
                let _ = writeln!(out, "{pad}}} else {{");
                print_stmts(out, otherwise, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::While { src, ctr, one, zero, body } => {
                for i in while_prep(*src, *ctr, *one, *zero) {
                    let _ = writeln!(out, "{pad}{i}");
                }
                let _ = writeln!(out, "{pad}while r{} > r{} {{", ctr.0, zero.0);
                print_stmts(out, body, indent + 1);
                let _ = writeln!(out, "{}{}", "    ".repeat(indent + 1), while_dec(*ctr, *one));
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::For { src, ctr, one, lim, body } => {
                for i in for_prep(*src, *one, *lim) {
                    let _ = writeln!(out, "{pad}{i}");
                }
                let _ = writeln!(out, "{pad}for r{} < r{} {{", ctr.0, lim.0);
                print_stmts(out, body, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

fn print_move_block(out: &mut String, keyword: &str, pairs: &[(u16, u16)], copies: &[CopyLine]) {
    let header = pairs.iter().map(|(s, d)| format!("h{s} -> h{d}")).collect::<Vec<_>>().join(" , ");
    let _ = writeln!(out, "{keyword} {header} {{");
    for c in copies {
        let _ =
            writeln!(out, "    memcpy v{}.r{} -> v{}.r{}", c.src_vrf, c.rs.0, c.dst_vrf, c.rd.0);
    }
    let _ = writeln!(out, "}}");
}

/// Renders one MPU's case as ezpim source text. Parsing this text and
/// assembling yields exactly the [`lower`]ed binary (the round-trip
/// property the conformance suite checks).
pub fn print_mpu(mpu: &MpuCase) -> String {
    let mut out = String::new();
    for top in &mpu.tops {
        match top {
            Top::Ensemble { members, body } => {
                let ms =
                    members.iter().map(|(h, v)| format!("h{h}.v{v}")).collect::<Vec<_>>().join(" ");
                let _ = writeln!(out, "ensemble {ms} {{");
                print_stmts(&mut out, body, 1);
                let _ = writeln!(out, "}}");
            }
            Top::Move { pairs, copies } => print_move_block(&mut out, "move", pairs, copies),
            Top::Send { dst, pairs, copies } => {
                let _ = writeln!(out, "send mpu{dst} {{");
                let mut inner = String::new();
                print_move_block(&mut inner, "move", pairs, copies);
                for line in inner.lines() {
                    let _ = writeln!(out, "    {line}");
                }
                let _ = writeln!(out, "}}");
            }
            Top::Recv { src } => {
                let _ = writeln!(out, "recv mpu{src}");
            }
            Top::Sync => {
                let _ = writeln!(out, "sync");
            }
        }
    }
    out
}

fn stmt_nodes(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Op(_) => 1,
            Stmt::If { then, .. } => 1 + stmt_nodes(then),
            Stmt::IfElse { then, otherwise, .. } => 1 + stmt_nodes(then) + stmt_nodes(otherwise),
            Stmt::While { body, .. } | Stmt::For { body, .. } => 1 + stmt_nodes(body),
        })
        .sum()
}

impl Case {
    /// Lowers every MPU's program (index = MPU id).
    ///
    /// # Errors
    ///
    /// Propagates the first per-MPU lowering error.
    pub fn programs(&self) -> Result<Vec<Program>, EzError> {
        self.mpus.iter().map(lower).collect()
    }

    /// Total lowered instruction count, or `None` if lowering fails. This
    /// is the size metric the shrinker minimizes (and the "reproducer of
    /// ≤ N instructions" measure).
    pub fn lowered_len(&self) -> Option<usize> {
        self.programs().ok().map(|ps| ps.iter().map(Program::len).sum())
    }

    /// Structural node count (tops + statements), the shrinker tiebreaker.
    pub fn node_count(&self) -> usize {
        self.mpus
            .iter()
            .map(|m| {
                m.tops
                    .iter()
                    .map(|t| match t {
                        Top::Ensemble { body, .. } => 1 + stmt_nodes(body),
                        Top::Move { copies, .. } | Top::Send { copies, .. } => 1 + copies.len(),
                        Top::Recv { .. } | Top::Sync => 1,
                    })
                    .sum::<usize>()
            })
            .sum()
    }

    /// Weight of the input data (entries plus nonzero lanes), the final
    /// shrinker tiebreaker.
    pub fn input_weight(&self) -> usize {
        self.mpus
            .iter()
            .flat_map(|m| &m.inputs)
            .map(|i| 1 + i.values.iter().filter(|v| **v != 0).count())
            .sum()
    }

    /// Renders the whole case (all MPUs and inputs) as annotated ezpim
    /// text — the reproducer format printed for shrunk mismatches.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (id, mpu) in self.mpus.iter().enumerate() {
            let _ = writeln!(out, "# ---- mpu {id} ----");
            for input in &mpu.inputs {
                let lanes: Vec<String> = input
                    .values
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| **v != 0)
                    .map(|(lane, v)| format!("{lane}:{v:#x}"))
                    .collect();
                let data = if lanes.is_empty() { "all-zero".to_string() } else { lanes.join(" ") };
                let _ =
                    writeln!(out, "# input h{}.v{}.r{} = {data}", input.rfh, input.vrf, input.reg);
            }
            out.push_str(&print_mpu(mpu));
        }
        out
    }
}

/// Formats a shrunk mismatch as a self-contained reproducer report.
pub fn reproducer_text(case: &Case, mismatch: &str) -> String {
    let size = case.lowered_len().map_or_else(|| "?".into(), |n| n.to_string());
    format!(
        "# conformance reproducer ({size} lowered instructions)\n# mismatch: {mismatch}\n{}",
        case.to_text()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpu_isa::CompareOp;

    fn r(i: u16) -> RegId {
        RegId(i)
    }

    fn sample_case() -> Case {
        Case {
            mpus: vec![MpuCase {
                tops: vec![
                    Top::Ensemble {
                        members: vec![(0, 0), (1, 1)],
                        body: vec![
                            Stmt::Op(Instruction::Binary {
                                op: BinaryOp::Add,
                                rs: r(0),
                                rt: r(1),
                                rd: r(2),
                            }),
                            Stmt::While {
                                src: r(3),
                                ctr: r(7),
                                one: r(8),
                                zero: r(9),
                                body: vec![Stmt::If {
                                    cond: Cond::Gt(r(0), r(1)),
                                    then: vec![Stmt::Op(Instruction::Unary {
                                        op: UnaryOp::Inc,
                                        rs: r(2),
                                        rd: r(2),
                                    })],
                                }],
                            },
                            Stmt::Op(Instruction::Compare {
                                op: CompareOp::Eq,
                                rs: r(0),
                                rt: r(1),
                            }),
                        ],
                    },
                    Top::Move {
                        pairs: vec![(0, 1)],
                        copies: vec![CopyLine { src_vrf: 0, rs: r(2), dst_vrf: 1, rd: r(3) }],
                    },
                    Top::Sync,
                ],
                inputs: vec![Input { rfh: 0, vrf: 0, reg: 0, values: vec![5; 64] }],
            }],
        }
    }

    #[test]
    fn lowering_matches_parsed_print() {
        let case = sample_case();
        let direct = lower(&case.mpus[0]).expect("lower");
        let text = print_mpu(&case.mpus[0]);
        let reparsed = ezpim::parse(&text).expect("parse").assemble().expect("assemble");
        assert_eq!(direct, reparsed, "text:\n{text}");
    }

    #[test]
    fn size_metrics_are_consistent() {
        let case = sample_case();
        assert_eq!(case.lowered_len().unwrap(), lower(&case.mpus[0]).unwrap().len());
        assert!(case.node_count() >= 6);
        assert_eq!(case.input_weight(), 1 + 64);
    }

    #[test]
    fn reproducer_mentions_inputs_and_mismatch() {
        let text = reproducer_text(&sample_case(), "lane 3 differs");
        assert!(text.contains("# mismatch: lane 3 differs"));
        assert!(text.contains("# input h0.v0.r0"));
        assert!(text.contains("ensemble h0.v0 h1.v1 {"));
    }
}
