//! Frontend ↔ hand-written equivalence for the PrIM kernel suite: every
//! registered PrIM kernel is also expressed through the dpapi pipeline
//! frontend, and the frontend-lowered execution must reproduce the
//! hand-written kernel's golden expectations byte-for-byte on the same
//! input data (reconstructed from the kernel's own `BuiltKernel`).
//!
//! Where a kernel needs per-slot composition (gather/scatter/hash-join),
//! the host combines several pipeline runs — the same host/device split
//! a DaPPA application uses. Values are full-width u64, so indicators
//! are widened to masks with `Eq → Sub(1) → Not` (all-ones on match)
//! and applied with a bitwise-`And` zip rather than a 32-bit multiply.

use dpapi::{MapOp, Pipeline, Pred, ReduceOp, ScanOp, ZipOp};
use mastodon::SimConfig;
use pum_backend::DatapathKind;
use workloads::{all_kernels, BuiltKernel};

const SEED: u64 = 0xD1FF_0007;

fn cfg() -> SimConfig {
    SimConfig::mpu(DatapathKind::Racer)
}

/// Harness member layout (one VRF per RFH, even VRFs, up to 8 members).
fn members(config: &SimConfig) -> Vec<(u16, u16)> {
    let g = config.datapath.geometry();
    let count = 8.min(g.max_active_vrfs_per_mpu()).max(1);
    (0..count).map(|i| ((i % g.rfhs_per_mpu) as u16, ((i / g.rfhs_per_mpu) * 2) as u16)).collect()
}

fn build(name: &str) -> BuiltKernel {
    let config = cfg();
    let kernel = all_kernels()
        .into_iter()
        .find(|k| k.name() == name)
        .unwrap_or_else(|| panic!("kernel {name} is registered"));
    kernel.build(&config.datapath.geometry(), &members(&config), SEED)
}

/// The input lane values of register `reg` for member `mi`.
fn input(built: &BuiltKernel, mi: usize, reg: u8) -> Vec<u64> {
    let (rfh, vrf) = built.members[mi];
    built
        .inputs
        .iter()
        .find(|((r, v, g), _)| (*r, *v, *g) == (rfh, vrf, reg))
        .map(|(_, vals)| vals.clone())
        .unwrap_or_else(|| panic!("member {mi} has input register r{reg}"))
}

/// Flattens one register across members and lanes (member-major).
fn flatten(built: &BuiltKernel, reg: u8) -> Vec<u64> {
    (0..built.members.len()).flat_map(|mi| input(built, mi, reg)).collect()
}

/// Flattens a register window segment-major: for each member and lane,
/// the `regs` values are consecutive.
fn flatten_segments(built: &BuiltKernel, regs: &[u8]) -> Vec<u64> {
    let mut out = Vec::new();
    for mi in 0..built.members.len() {
        let cols: Vec<Vec<u64>> = regs.iter().map(|&r| input(built, mi, r)).collect();
        let lanes = cols[0].len();
        for lane in 0..lanes {
            for col in &cols {
                out.push(col[lane]);
            }
        }
    }
    out
}

/// The golden expectation for output position `oi` of member `mi`
/// (LaneKernel layout: member-major, then declared output order).
fn expected(built: &BuiltKernel, mi: usize, outs: usize, oi: usize) -> &[u64] {
    &built.expected[mi * outs + oi]
}

/// An indicator-mask pipeline: all-ones where `x == c`, zero elsewhere,
/// then AND-ed with zip column 0. Safe for full-width u64 values.
fn masked_pick(c: u64) -> Pipeline {
    Pipeline::new().map(MapOp::Eq(c)).map(MapOp::Sub(1)).map(MapOp::Not).zip(0, ZipOp::And)
}

/// histogram ≡ per-bin `map(And 3) → filter(Eq bin) → reduce(Count)`.
#[test]
fn histogram_counts_match_pipeline_counts() {
    let built = build("histogram");
    let elements: Vec<u64> = (0..3).flat_map(|e| flatten(&built, e)).collect();
    for bin in 0..4u64 {
        let hand: u64 = built.expected[bin as usize].iter().sum();
        let run = Pipeline::new()
            .map(MapOp::And(3))
            .filter(Pred::Eq(bin))
            .reduce(ReduceOp::Count)
            .run(&cfg(), &elements, &[])
            .unwrap();
        assert_eq!(run.reduced, Some(hand), "bin {bin}");
    }
}

/// spmv ≡ `zip(Mul) → scan(Sum)` plus host row-differencing of the
/// inclusive prefix at each 4-wide ELL row boundary.
#[test]
fn spmv_rows_match_zip_mul_scan() {
    let built = build("spmv");
    let vals = flatten_segments(&built, &[0, 1, 2, 3]);
    let xs = flatten_segments(&built, &[4, 5, 6, 7]);
    let run =
        Pipeline::new().zip(0, ZipOp::Mul).scan(ScanOp::Sum).run(&cfg(), &vals, &[&xs]).unwrap();
    let lanes = input(&built, 0, 0).len();
    for mi in 0..built.members.len() {
        let hand = expected(&built, mi, 1, 0);
        for (lane, &want) in hand.iter().enumerate().take(lanes) {
            let row = (mi * lanes + lane) * 4;
            let prev = if row == 0 { 0 } else { run.values[row - 1] };
            let y = run.values[row + 3].wrapping_sub(prev);
            assert_eq!(y, want, "member {mi} lane {lane}");
        }
    }
}

/// gather ≡ per-slot indicator-mask pipelines AND-ed with the broadcast
/// table column, summed on the host (slots are disjoint).
#[test]
fn gather_matches_indicator_pipelines() {
    let built = build("gather");
    for (oi, idx_reg) in [(0usize, 4u8), (1, 5)] {
        let indices = flatten(&built, idx_reg);
        let mut gathered = vec![0u64; indices.len()];
        for slot in 0..4u64 {
            let table: Vec<u64> = flatten(&built, slot as u8);
            let run = masked_pick(slot).run(&cfg(), &indices, &[&table]).unwrap();
            for (g, v) in gathered.iter_mut().zip(&run.values) {
                *g |= v;
            }
        }
        let lanes = input(&built, 0, idx_reg).len();
        for mi in 0..built.members.len() {
            let hand = expected(&built, mi, 2, oi);
            assert_eq!(&gathered[mi * lanes..(mi + 1) * lanes], hand, "member {mi} out {oi}");
        }
    }
}

/// scatter ≡ per-slot indicator pipelines for both (value, index) pairs,
/// with the host applying last-writer-wins (pair 1 over pair 0).
#[test]
fn scatter_matches_indicator_pipelines() {
    let built = build("scatter");
    let (v0, i0) = (flatten(&built, 4), flatten(&built, 5));
    let (v1, i1) = (flatten(&built, 6), flatten(&built, 7));
    let lanes = input(&built, 0, 4).len();
    for slot in 0..4u64 {
        let ind1 = Pipeline::new().map(MapOp::Eq(slot)).run(&cfg(), &i1, &[]).unwrap();
        let c1 = masked_pick(slot).run(&cfg(), &i1, &[&v1]).unwrap();
        let c0 = masked_pick(slot).run(&cfg(), &i0, &[&v0]).unwrap();
        let slots: Vec<u64> = (0..i0.len())
            .map(|e| if ind1.values[e] == 1 { c1.values[e] } else { c0.values[e] })
            .collect();
        for mi in 0..built.members.len() {
            let hand = expected(&built, mi, 4, slot as usize);
            assert_eq!(&slots[mi * lanes..(mi + 1) * lanes], hand, "member {mi} slot {slot}");
        }
    }
}

/// select ≡ `filter(Gt threshold)`: the pipeline's survivors equal the
/// hand-written kernel's flagged lanes, in lane order.
#[test]
fn select_survivors_match_filter() {
    let built = build("select");
    for mi in 0..built.members.len() {
        let values = input(&built, mi, 0);
        let threshold = input(&built, mi, 1)[0];
        let run = Pipeline::new().filter(Pred::Gt(threshold)).run(&cfg(), &values, &[]).unwrap();
        let flags = expected(&built, mi, 2, 0);
        let masked = expected(&built, mi, 2, 1);
        let hand: Vec<u64> =
            flags.iter().zip(masked).filter(|(f, _)| **f == 1).map(|(_, v)| *v).collect();
        assert_eq!(run.values, hand, "member {mi}");
        let count = Pipeline::new()
            .filter(Pred::Gt(threshold))
            .reduce(ReduceOp::Count)
            .run(&cfg(), &values, &[])
            .unwrap();
        assert_eq!(count.reduced, Some(flags.iter().sum()), "member {mi} count");
    }
}

/// hash-join ≡ per-build-key indicator masks over the probe column; the
/// host picks the matching build value (keys are distinct, so at most
/// one mask fires per probe).
#[test]
fn hashjoin_matches_indicator_pipelines() {
    let built = build("hash-join");
    for mi in 0..built.members.len() {
        let probe = input(&built, mi, 6);
        let mut out = vec![0u64; probe.len()];
        let mut flag = vec![0u64; probe.len()];
        for j in 0..3u8 {
            let key = input(&built, mi, j)[0];
            let val = input(&built, mi, 3 + j)[0];
            let mask = Pipeline::new()
                .map(MapOp::Eq(key))
                .map(MapOp::Sub(1))
                .map(MapOp::Not)
                .run(&cfg(), &probe, &[])
                .unwrap();
            for ((o, f), m) in out.iter_mut().zip(flag.iter_mut()).zip(&mask.values) {
                *o |= m & val;
                *f |= m & 1;
            }
        }
        assert_eq!(out, expected(&built, mi, 2, 0), "member {mi} joined values");
        assert_eq!(flag, expected(&built, mi, 2, 1), "member {mi} match flags");
    }
}

/// prefix-scan ≡ global `scan(Sum)` plus host re-segmentation into the
/// kernel's 8-element per-lane segments.
#[test]
fn prefixscan_segments_match_global_scan() {
    let built = build("prefix-scan");
    let elements = flatten_segments(&built, &[0, 1, 2, 3, 4, 5, 6, 7]);
    let run = Pipeline::new().scan(ScanOp::Sum).run(&cfg(), &elements, &[]).unwrap();
    let lanes = input(&built, 0, 0).len();
    for mi in 0..built.members.len() {
        for lane in 0..lanes {
            let base = (mi * lanes + lane) * 8;
            let prev = if base == 0 { 0 } else { run.values[base - 1] };
            for k in 0..8 {
                let hand = expected(&built, mi, 8, k)[lane];
                assert_eq!(
                    run.values[base + k].wrapping_sub(prev),
                    hand,
                    "member {mi} lane {lane} k {k}"
                );
            }
        }
    }
}
