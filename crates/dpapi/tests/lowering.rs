//! Differential verification of the dpapi lowering: random stage
//! compositions must match the plain-Rust oracle when executed on the
//! cycle-exact simulator, every lowered program must round-trip through
//! the ezpim text format (builder → text → parser → assemble), and
//! build-time errors must carry the offending stage index.

use dpapi::{random_pipeline, DpError, MapOp, Pipeline, Pred, ReduceOp, ScanOp, ZipOp};
use mastodon::SimConfig;
use proptest::prelude::*;
use pum_backend::DatapathKind;

fn cfg() -> SimConfig {
    SimConfig::mpu(DatapathKind::Racer)
}

fn assert_matches_oracle(p: &Pipeline, primary: &[u64], columns: &[&[u64]], label: &str) {
    let want = p.oracle(primary, columns).unwrap_or_else(|e| panic!("{label}: oracle: {e}"));
    let got = p.run(&cfg(), primary, columns).unwrap_or_else(|e| panic!("{label}: run: {e}"));
    assert_eq!(got.values, want.values, "{label}: values diverge (pipeline {p:?})");
    assert_eq!(got.reduced, want.reduced, "{label}: reduced diverges (pipeline {p:?})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random pipelines over random inputs: lowered execution ≡ oracle.
    #[test]
    fn random_pipelines_match_oracle(seed in any::<u64>()) {
        let rp = random_pipeline(seed);
        assert_matches_oracle(
            &rp.pipeline,
            &rp.primary,
            &rp.column_refs(),
            &format!("seed {seed}"),
        );
    }

    /// Builder → text → parser → assemble is the identity on every
    /// lowered program (both phases of two-launch scans).
    #[test]
    fn lowered_text_round_trips(seed in any::<u64>()) {
        let rp = random_pipeline(seed);
        let lowered = rp.pipeline.lower().unwrap();
        let members = [(0u16, 0u16), (1, 0), (0, 2)];
        let text = lowered.ezpim_text(&members);
        let parsed = ezpim::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: text failed to parse: {e}\n{text}"))
            .assemble()
            .unwrap();
        prop_assert_eq!(parsed, lowered.program(&members).unwrap());
        if let Some(text2) = lowered.phase2_text(&members) {
            let parsed2 = ezpim::parse(&text2).unwrap().assemble().unwrap();
            prop_assert_eq!(parsed2, lowered.phase2_program(&members).unwrap().unwrap());
        }
    }
}

/// Edge input shapes: empty, singleton, around the 64-lane boundary, and
/// multi-chunk, for one pipeline of each terminal kind.
#[test]
fn edge_lengths_match_oracle() {
    let pipelines = [
        Pipeline::new().map(MapOp::Add(3)).map(MapOp::Xor(0xF0F0)),
        Pipeline::new().map(MapOp::And(7)).filter(Pred::Lt(4)),
        Pipeline::new().zip(0, ZipOp::Max).reduce(ReduceOp::Min),
        Pipeline::new().map(MapOp::Popc).scan(ScanOp::Sum),
        Pipeline::new().filter(Pred::Gt(1 << 20)).reduce(ReduceOp::Count),
    ];
    for n in [0usize, 1, 63, 64, 65, 200] {
        let primary: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let col: Vec<u64> = (0..n as u64).map(|i| i.rotate_left(17) ^ 0xABCD).collect();
        for (pi, p) in pipelines.iter().enumerate() {
            assert_matches_oracle(p, &primary, &[&col], &format!("pipeline {pi} n {n}"));
        }
    }
}

/// An all-false filter yields no values and fold identities.
#[test]
fn all_false_filter_matches_oracle() {
    let data: Vec<u64> = (0..500).collect();
    let kept = Pipeline::new().filter(Pred::Gt(u64::MAX));
    assert_matches_oracle(&kept, &data, &[], "all-false filter");
    let counted = Pipeline::new().filter(Pred::Gt(u64::MAX)).reduce(ReduceOp::Count);
    let run = counted.run(&cfg(), &data, &[]).unwrap();
    assert_eq!(run.reduced, Some(0));
    let min = Pipeline::new().filter(Pred::Gt(u64::MAX)).reduce(ReduceOp::Min);
    assert_eq!(min.run(&cfg(), &data, &[]).unwrap().reduced, Some(u64::MAX));
}

/// Sharded execution is value-identical to single-MPU execution for both
/// the SEND/RECV reduce path and the embarrassing path.
#[test]
fn sharded_runs_match_single_mpu() {
    let data: Vec<u64> = (0..4000).map(|i| i ^ (i << 13)).collect();
    let reduce = Pipeline::new().map(MapOp::And(0xFFFF)).reduce(ReduceOp::Xor);
    let filter = Pipeline::new().map(MapOp::And(0xFF)).filter(Pred::Gt(0x7F));
    for p in [&reduce, &filter] {
        let single = p.run(&cfg(), &data, &[]).unwrap();
        let sharded = p.run_sharded(&cfg(), 4, &data, &[]).unwrap();
        assert_eq!(single.values, sharded.values);
        assert_eq!(single.reduced, sharded.reduced);
    }
}

/// Build-time errors carry the offending stage index, and shape errors
/// carry the offending column.
#[test]
fn errors_carry_stage_and_column_context() {
    let deep = Pipeline::new()
        .map(MapOp::Add(1))
        .filter(Pred::Gt(2))
        .map(MapOp::Not)
        .filter(Pred::Lt(9))
        .filter(Pred::Eq(0));
    assert_eq!(deep.lower(), Err(DpError::MaskPoolExhausted { stage: 4 }));

    let unknown = Pipeline::new().zip(2, ZipOp::Add);
    assert_eq!(
        unknown.run(&cfg(), &[1, 2], &[&[3, 4]]),
        Err(DpError::UnknownColumn { stage: 0, column: 2 })
    );

    let short = Pipeline::new().zip(0, ZipOp::Add);
    assert_eq!(
        short.run(&cfg(), &[1, 2, 3], &[&[9]]),
        Err(DpError::ColumnLengthMismatch { column: 0, len: 1, expected: 3 })
    );

    let trailing = Pipeline::new().reduce(ReduceOp::Sum).map(MapOp::Not);
    assert_eq!(trailing.lower(), Err(DpError::TerminalNotLast { stage: 0 }));
}
