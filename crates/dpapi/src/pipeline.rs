//! The typed pipeline surface and its plain-Rust oracle.
//!
//! Semantics (shared bit-for-bit by the oracle, the lowering, and the
//! execution engine):
//!
//! - all values are `u64`; `+`/`-` wrap; comparisons are unsigned;
//! - `Mul` truncates both operands to their low 32 bits before the
//!   multiply, exactly like the ISA's narrow-operand `MUL`;
//! - `filter` drops elements: surviving elements keep their original
//!   order, and downstream `zip` stages still join by *original* element
//!   index (the columns are aligned before any filtering);
//! - `scan` is an inclusive prefix sum over the surviving elements;
//! - `reduce` folds the surviving elements, yielding the operation's
//!   identity on an empty selection (`Count` yields 0).

use crate::DpError;
use pum_backend::semantics;

/// Element-wise map with a broadcast immediate where applicable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    /// `x + c` (wrapping).
    Add(u64),
    /// `x - c` (wrapping).
    Sub(u64),
    /// `mul32(x, c)`: low-32-bit multiply, like the ISA.
    Mul(u64),
    /// `x & c`.
    And(u64),
    /// `x | c`.
    Or(u64),
    /// `x ^ c`.
    Xor(u64),
    /// `min(x, c)` (unsigned).
    Min(u64),
    /// `max(x, c)` (unsigned).
    Max(u64),
    /// `1` if `x == c`, else `0`.
    Eq(u64),
    /// `!x`.
    Not,
    /// `popcount(x)`.
    Popc,
    /// `x << 1`.
    Shl1,
}

/// Element-wise combine with a second input column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipOp {
    /// `x + z` (wrapping).
    Add,
    /// `x - z` (wrapping).
    Sub,
    /// `mul32(x, z)`.
    Mul,
    /// `min(x, z)` (unsigned).
    Min,
    /// `max(x, z)` (unsigned).
    Max,
    /// `x & z`.
    And,
    /// `x | z`.
    Or,
    /// `x ^ z`.
    Xor,
}

/// Filter predicate against a broadcast immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pred {
    /// Keep elements with `x > c` (unsigned).
    Gt(u64),
    /// Keep elements with `x < c` (unsigned).
    Lt(u64),
    /// Keep elements with `x == c`.
    Eq(u64),
}

/// Terminal reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum (identity 0).
    Sum,
    /// Unsigned minimum (identity `u64::MAX`).
    Min,
    /// Unsigned maximum (identity 0).
    Max,
    /// Bitwise and (identity `u64::MAX`).
    And,
    /// Bitwise or (identity 0).
    Or,
    /// Bitwise xor (identity 0).
    Xor,
    /// Number of surviving elements.
    Count,
}

impl ReduceOp {
    /// The fold identity.
    pub fn identity(self) -> u64 {
        match self {
            ReduceOp::Sum | ReduceOp::Max | ReduceOp::Or | ReduceOp::Xor | ReduceOp::Count => 0,
            ReduceOp::Min | ReduceOp::And => u64::MAX,
        }
    }

    /// The binary combine.
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum | ReduceOp::Count => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::And => a & b,
            ReduceOp::Or => a | b,
            ReduceOp::Xor => a ^ b,
        }
    }
}

/// Terminal inclusive scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOp {
    /// Wrapping inclusive prefix sum.
    Sum,
}

/// One pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Element-wise map.
    Map(MapOp),
    /// Element-wise combine with input column `column`.
    Zip {
        /// Which extra input column to join (index into the `columns`
        /// argument of [`Pipeline::run`] / [`Pipeline::oracle`]).
        column: usize,
        /// The combine operation.
        op: ZipOp,
    },
    /// Drop elements failing the predicate.
    Filter(Pred),
    /// Terminal inclusive scan over the survivors.
    Scan(ScanOp),
    /// Terminal fold over the survivors.
    Reduce(ReduceOp),
}

impl Stage {
    /// True for `scan`/`reduce`, which must come last.
    pub fn is_terminal(self) -> bool {
        matches!(self, Stage::Scan(_) | Stage::Reduce(_))
    }
}

/// Host-side map semantics.
pub(crate) fn apply_map(op: MapOp, x: u64) -> u64 {
    match op {
        MapOp::Add(c) => x.wrapping_add(c),
        MapOp::Sub(c) => x.wrapping_sub(c),
        MapOp::Mul(c) => semantics::mul32(x, c),
        MapOp::And(c) => x & c,
        MapOp::Or(c) => x | c,
        MapOp::Xor(c) => x ^ c,
        MapOp::Min(c) => x.min(c),
        MapOp::Max(c) => x.max(c),
        MapOp::Eq(c) => u64::from(x == c),
        MapOp::Not => !x,
        MapOp::Popc => u64::from(x.count_ones()),
        MapOp::Shl1 => x << 1,
    }
}

/// Host-side zip semantics.
pub(crate) fn apply_zip(op: ZipOp, x: u64, z: u64) -> u64 {
    match op {
        ZipOp::Add => x.wrapping_add(z),
        ZipOp::Sub => x.wrapping_sub(z),
        ZipOp::Mul => semantics::mul32(x, z),
        ZipOp::Min => x.min(z),
        ZipOp::Max => x.max(z),
        ZipOp::And => x & z,
        ZipOp::Or => x | z,
        ZipOp::Xor => x ^ z,
    }
}

/// Host-side predicate semantics.
pub(crate) fn apply_pred(pred: Pred, x: u64) -> bool {
    match pred {
        Pred::Gt(c) => x > c,
        Pred::Lt(c) => x < c,
        Pred::Eq(c) => x == c,
    }
}

/// What a pipeline evaluates to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineOutput {
    /// Surviving (and possibly scanned) element values, in order. Empty
    /// for `reduce`-terminated pipelines.
    pub values: Vec<u64>,
    /// The folded value for `reduce`-terminated pipelines.
    pub reduced: Option<u64>,
}

/// A typed data-parallel pipeline. See the crate docs for an example.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// An empty pipeline (the identity over its input).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a pipeline directly from stages (used by the generators).
    pub fn from_stages(stages: Vec<Stage>) -> Self {
        Self { stages }
    }

    /// The stage sequence.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Appends an element-wise map.
    pub fn map(mut self, op: MapOp) -> Self {
        self.stages.push(Stage::Map(op));
        self
    }

    /// Appends an element-wise combine with input column `column`.
    pub fn zip(mut self, column: usize, op: ZipOp) -> Self {
        self.stages.push(Stage::Zip { column, op });
        self
    }

    /// Appends a filter.
    pub fn filter(mut self, pred: Pred) -> Self {
        self.stages.push(Stage::Filter(pred));
        self
    }

    /// Appends the terminal inclusive scan.
    pub fn scan(mut self, op: ScanOp) -> Self {
        self.stages.push(Stage::Scan(op));
        self
    }

    /// Appends the terminal reduction.
    pub fn reduce(mut self, op: ReduceOp) -> Self {
        self.stages.push(Stage::Reduce(op));
        self
    }

    /// Validates stage ordering and zip columns against `columns` extra
    /// inputs; returns the terminal stage, if any.
    pub(crate) fn validate(&self, columns: usize) -> Result<Option<Stage>, DpError> {
        let mut terminal = None;
        for (i, &stage) in self.stages.iter().enumerate() {
            if terminal.is_some() {
                return Err(DpError::TerminalNotLast { stage: i - 1 });
            }
            match stage {
                Stage::Zip { column, .. } if column >= columns => {
                    return Err(DpError::UnknownColumn { stage: i, column });
                }
                s if s.is_terminal() => terminal = Some(s),
                _ => {}
            }
        }
        Ok(terminal)
    }

    /// The plain-Rust oracle: evaluates the pipeline over `primary` (and
    /// `columns` for zips) with the exact device semantics.
    ///
    /// # Errors
    ///
    /// Returns stage-ordering, unknown-column, and length-mismatch
    /// errors.
    pub fn oracle(&self, primary: &[u64], columns: &[&[u64]]) -> Result<PipelineOutput, DpError> {
        let terminal = self.validate(columns.len())?;
        for (j, col) in columns.iter().enumerate() {
            if col.len() != primary.len() {
                return Err(DpError::ColumnLengthMismatch {
                    column: j,
                    len: col.len(),
                    expected: primary.len(),
                });
            }
        }
        let mut survivors = Vec::new();
        'elem: for (i, &x0) in primary.iter().enumerate() {
            let mut x = x0;
            for &stage in &self.stages {
                match stage {
                    Stage::Map(op) => x = apply_map(op, x),
                    Stage::Zip { column, op } => x = apply_zip(op, x, columns[column][i]),
                    Stage::Filter(pred) => {
                        if !apply_pred(pred, x) {
                            continue 'elem;
                        }
                    }
                    Stage::Scan(_) | Stage::Reduce(_) => break,
                }
            }
            survivors.push(x);
        }
        Ok(match terminal {
            None => PipelineOutput { values: survivors, reduced: None },
            Some(Stage::Scan(ScanOp::Sum)) => {
                let mut running = 0u64;
                for v in &mut survivors {
                    running = running.wrapping_add(*v);
                    *v = running;
                }
                PipelineOutput { values: survivors, reduced: None }
            }
            Some(Stage::Reduce(op)) => {
                let folded = survivors.iter().fold(op.identity(), |acc, &v| {
                    op.combine(acc, if op == ReduceOp::Count { 1 } else { v })
                });
                PipelineOutput { values: Vec::new(), reduced: Some(folded) }
            }
            Some(_) => unreachable!("only scan/reduce are terminal"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_maps_filters_and_reduces() {
        let p = Pipeline::new().map(MapOp::And(3)).filter(Pred::Eq(3)).reduce(ReduceOp::Count);
        let out = p.oracle(&(0..8).collect::<Vec<_>>(), &[]).unwrap();
        assert_eq!(out.reduced, Some(2)); // 3 and 7
    }

    #[test]
    fn oracle_zip_joins_by_original_index() {
        let p = Pipeline::new().filter(Pred::Gt(1)).zip(0, ZipOp::Add);
        let out = p.oracle(&[1, 2, 3], &[&[10, 20, 30]]).unwrap();
        // Element 0 is dropped; survivors still join their own column rows.
        assert_eq!(out.values, vec![22, 33]);
    }

    #[test]
    fn oracle_scan_is_inclusive_over_survivors() {
        let p = Pipeline::new().filter(Pred::Gt(10)).scan(ScanOp::Sum);
        let out = p.oracle(&[5, 20, 7, 30], &[]).unwrap();
        assert_eq!(out.values, vec![20, 50]);
    }

    #[test]
    fn terminal_must_be_last() {
        let p = Pipeline::new().reduce(ReduceOp::Sum).map(MapOp::Not);
        assert_eq!(p.oracle(&[1], &[]), Err(DpError::TerminalNotLast { stage: 0 }));
    }

    #[test]
    fn reduce_of_empty_selection_is_identity() {
        let p = Pipeline::new().filter(Pred::Gt(u64::MAX)).reduce(ReduceOp::Min);
        let out = p.oracle(&[1, 2, 3], &[]).unwrap();
        assert_eq!(out.reduced, Some(u64::MAX));
    }
}
