//! # dpapi — a DaPPA-style data-parallel frontend for the MPU
//!
//! A typed [`Pipeline`] of `map` / `zip` / `filter` / `scan` / `reduce`
//! stages over host slices, lowered to ezpim MPU programs: filters become
//! mask-pool predication, `reduce`/`scan` become log-depth in-register
//! trees, and inputs are automatically chunked across the 64-lane VRF
//! geometry, across ensemble members, across sequential launches, and —
//! for reductions — across multiple MPUs with partial aggregation over
//! SEND/RECV.
//!
//! Every pipeline has three coupled artifacts, cross-checked by the
//! crate's tests:
//!
//! 1. a plain-Rust **oracle** ([`Pipeline::oracle`]) defining the
//!    semantics (wrapping u64 arithmetic, `MUL` truncating to the low 32
//!    bits of each operand like the ISA, unsigned comparisons);
//! 2. a **lowering** ([`Pipeline::lower`]) to a [`Kop`] IR that replays
//!    into the ezpim builder, prints as parseable ezpim text, and
//!    converts into conformance-case statements;
//! 3. an **execution** ([`Pipeline::run`] / [`Pipeline::run_sharded`])
//!    on the cycle-exact simulator, returning lane-exact results plus
//!    [`mastodon::Stats`].
//!
//! ```
//! use dpapi::{MapOp, Pipeline, Pred, ReduceOp};
//! use mastodon::SimConfig;
//! use pum_backend::DatapathKind;
//!
//! # fn main() -> Result<(), dpapi::DpError> {
//! let data: Vec<u64> = (0..1000).collect();
//! // How many values hash into histogram bin 3?
//! let pipeline = Pipeline::new()
//!     .map(MapOp::And(3))
//!     .filter(Pred::Eq(3))
//!     .reduce(ReduceOp::Count);
//! let run = pipeline.run(&SimConfig::mpu(DatapathKind::Racer), &data, &[])?;
//! assert_eq!(run.reduced, Some(250));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod gen;
mod lower;
mod pipeline;

pub use exec::PipelineRun;
pub use gen::{random_pipeline, RandomPipeline};
pub use lower::{Kop, Lowered, Phase2};
pub use pipeline::{MapOp, Pipeline, PipelineOutput, Pred, ReduceOp, ScanOp, Stage, ZipOp};

use std::fmt;

/// Frontend build- or run-time error.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// A `reduce`/`scan` stage is followed by further stages.
    TerminalNotLast {
        /// Index of the offending terminal stage.
        stage: usize,
    },
    /// The filter chain nests deeper than the ezpim mask-register pool
    /// supports; reported at build (lowering) time with the stage index
    /// of the filter that could not be allocated.
    MaskPoolExhausted {
        /// Index of the offending stage.
        stage: usize,
    },
    /// The stage mix needs more architectural registers than the ten the
    /// register conventions leave writable.
    RegisterPressure {
        /// Registers the lowering would need.
        needed: usize,
        /// Registers available (r0–r9).
        available: usize,
    },
    /// A `zip` stage references a column index not provided as input.
    UnknownColumn {
        /// Index of the zip stage.
        stage: usize,
        /// The column it referenced.
        column: usize,
    },
    /// A zip column's length differs from the primary input's.
    ColumnLengthMismatch {
        /// The column index.
        column: usize,
        /// Its length.
        len: usize,
        /// The primary input's length.
        expected: usize,
    },
    /// The simulator rejected or failed the lowered program.
    Sim(String),
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::TerminalNotLast { stage } => {
                write!(f, "stage {stage}: reduce/scan must be the final stage")
            }
            DpError::MaskPoolExhausted { stage } => {
                write!(f, "stage {stage}: filter nesting exhausts the mask-register pool")
            }
            DpError::RegisterPressure { needed, available } => {
                write!(f, "pipeline needs {needed} registers, only {available} are writable")
            }
            DpError::UnknownColumn { stage, column } => {
                write!(f, "stage {stage}: zip column {column} was not provided")
            }
            DpError::ColumnLengthMismatch { column, len, expected } => {
                write!(f, "zip column {column} has {len} elements, expected {expected}")
            }
            DpError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for DpError {}
