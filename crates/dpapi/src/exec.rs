//! Execution: chunk host slices across the VRF geometry, launch the
//! lowered program on the cycle-exact simulator, and stitch the results
//! back into host-visible values.
//!
//! ## Chunking
//!
//! One launch on one MPU covers `members × lanes × SEG` elements, laid
//! out segment-major so each lane holds SEG *consecutive* elements (scan
//! segments must be contiguous). Element `e` maps to
//! `(launch, mpu, member, lane, k)` by plain division. Padding lanes load
//! the fold identity (reductions) or zero, and the validity column marks
//! them dead on the flag path, so partial chunks are exact.
//!
//! ## Sharding
//!
//! [`Pipeline::run_sharded`] spreads each launch over up to
//! `mpus_per_chip` MPUs. Reductions aggregate on-device: every leaf MPU
//! SENDs its per-member partials to MPU 0, which RECVs in leaf order
//! (deterministic, deadlock-free — sends never block) and folds them
//! with the reduce ALU op before the host reads a single MPU. Other
//! pipelines shard embarrassingly: identical programs, independent
//! readback, no NoC traffic.

use crate::lower::{emit_kops, Lowered};
use crate::pipeline::{apply_map, apply_zip, Pipeline, ReduceOp, Stage};
use crate::DpError;
use mastodon::{run_single, Mpu, RegisterInit, SimConfig, Stats, System};
use mpu_isa::{BinaryOp, Instruction, Program, RegId};

/// Ensemble members simulated per MPU (mirrors the workloads harness:
/// simulate a slice, scale analytically).
const SIM_VRFS: usize = 8;

/// The result of running a pipeline on the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRun {
    /// Surviving element values, in input order (empty for reductions).
    pub values: Vec<u64>,
    /// The folded value, when the pipeline ends in `reduce`.
    pub reduced: Option<u64>,
    /// Merged simulator statistics over every launch.
    pub stats: Stats,
    /// Simulated program launches (scan pipelines launch twice per
    /// chunk).
    pub launches: u64,
}

fn member_layout(config: &SimConfig) -> (Vec<(u16, u16)>, usize) {
    let g = config.datapath.geometry();
    let count = SIM_VRFS.min(g.max_active_vrfs_per_mpu()).max(1);
    let members = (0..count)
        .map(|i| {
            let rfh = (i % g.rfhs_per_mpu) as u16;
            let vrf = ((i / g.rfhs_per_mpu) * 2) as u16;
            (rfh, vrf)
        })
        .collect();
    (members, g.lanes_per_vrf)
}

impl Lowered {
    /// The value padding lanes load into data registers.
    fn pad_value(&self) -> u64 {
        match self.terminal {
            Some(Stage::Reduce(op)) if self.flag.is_none() => op.identity(),
            _ => 0,
        }
    }

    /// A register that is dead after the phase-1 body, used as the
    /// SEND/RECV landing slot on the root MPU of a sharded reduction.
    fn xfer_reg(&self) -> RegId {
        if self.seg >= 2 {
            // Folded away by the first reduction-tree round.
            self.data[1]
        } else if let Some(v) = self.valid {
            // Dead once the flag is computed.
            v
        } else {
            self.scratch.expect("lowering reserved a transfer register")
        }
    }

    /// Initial-register bindings for one chunk on one MPU.
    ///
    /// `chunk` / `zip_chunks` are the chunk-aligned slices of the primary
    /// and zip columns.
    fn launch_inputs(
        &self,
        members: &[(u16, u16)],
        lanes: usize,
        chunk: &[u64],
        zip_chunks: &[(usize, &[u64])],
    ) -> Vec<RegisterInit> {
        let pad = self.pad_value();
        let elem = |col: &[u64], m: usize, lane: usize, k: usize, fill: u64| {
            col.get((m * lanes + lane) * self.seg + k).copied().unwrap_or(fill)
        };
        let mut inits = Vec::new();
        for (m, &(rfh, vrf)) in members.iter().enumerate() {
            for (k, &reg) in self.data.iter().enumerate() {
                let vals: Vec<u64> = (0..lanes).map(|lane| elem(chunk, m, lane, k, pad)).collect();
                inits.push(((rfh, vrf, reg.0 as u8), vals));
            }
            for (col, regs) in &self.zips {
                let (_, col_chunk) = zip_chunks
                    .iter()
                    .find(|(c, _)| c == col)
                    .expect("zip chunk provided for every zip column");
                for (k, &reg) in regs.iter().enumerate() {
                    let vals: Vec<u64> =
                        (0..lanes).map(|lane| elem(col_chunk, m, lane, k, 0)).collect();
                    inits.push(((rfh, vrf, reg.0 as u8), vals));
                }
            }
            for &(reg, value) in &self.consts {
                inits.push(((rfh, vrf, reg.0 as u8), vec![value; lanes]));
            }
            if let Some(v) = self.valid {
                // A lane is valid only when its WHOLE segment is real
                // (for SEG == 1 this is plain element validity); a
                // partial tail lane is masked out and folded on the host.
                let vals: Vec<u64> = (0..lanes)
                    .map(|lane| u64::from((m * lanes + lane) * self.seg + self.seg <= chunk.len()))
                    .collect();
                inits.push(((rfh, vrf, v.0 as u8), vals));
            }
        }
        inits
    }

    /// Leaf program for a sharded reduction: phase-1 compute, then SEND
    /// every member's partial to the root's landing register.
    fn leaf_program(&self, members: &[(u16, u16)]) -> Result<Program, DpError> {
        let (d0, xfer) = (self.data[0], self.xfer_reg());
        let mut ez = ezpim::EzProgram::new();
        ez.ensemble(members, |b| emit_kops(b, &self.kops))
            .map_err(|e| DpError::Sim(e.to_string()))?;
        ez.send(0, |s| {
            let mut vrfs: Vec<u16> = members.iter().map(|&(_, v)| v).collect();
            vrfs.dedup();
            for vrf in vrfs {
                let pairs: Vec<(u16, u16)> = members
                    .iter()
                    .filter(|&&(_, v)| v == vrf)
                    .map(|&(rfh, _)| (rfh, rfh))
                    .collect();
                s.transfer(&pairs, |t| {
                    t.memcpy(vrf, d0, vrf, xfer);
                });
            }
        });
        ez.assemble().map_err(|e| DpError::Sim(e.to_string()))
    }

    /// Root program for a sharded reduction: phase-1 compute, then RECV
    /// each leaf's partials (in leaf order) and fold them into `d0`.
    fn root_program(
        &self,
        members: &[(u16, u16)],
        leaves: usize,
        op: ReduceOp,
    ) -> Result<Program, DpError> {
        let (d0, xfer) = (self.data[0], self.xfer_reg());
        let fold = Instruction::Binary { op: op.reduce_binary_op(), rs: xfer, rt: d0, rd: d0 };
        let mut ez = ezpim::EzProgram::new();
        ez.ensemble(members, |b| emit_kops(b, &self.kops))
            .map_err(|e| DpError::Sim(e.to_string()))?;
        for leaf in 1..=leaves {
            ez.recv(leaf as u16);
            ez.ensemble(members, |b| {
                b.op(fold);
            })
            .map_err(|e| DpError::Sim(e.to_string()))?;
        }
        ez.assemble().map_err(|e| DpError::Sim(e.to_string()))
    }
}

impl ReduceOp {
    /// The ALU op a sharded root uses to fold RECV'd partials (public to
    /// the crate via the lowering's reduction tree as well).
    pub(crate) fn reduce_binary_op(self) -> BinaryOp {
        match self {
            ReduceOp::Sum | ReduceOp::Count => BinaryOp::Add,
            ReduceOp::Min => BinaryOp::Min,
            ReduceOp::Max => BinaryOp::Max,
            ReduceOp::And => BinaryOp::And,
            ReduceOp::Or => BinaryOp::Or,
            ReduceOp::Xor => BinaryOp::Xor,
        }
    }
}

/// Reads one chunk's data (and flag) registers back in element order.
fn read_chunk(
    mpu: &mut Mpu,
    lowered: &Lowered,
    members: &[(u16, u16)],
    lanes: usize,
    len: usize,
) -> Result<(Vec<u64>, Vec<u64>), DpError> {
    let mut vals = vec![0u64; len];
    let mut flags = vec![0u64; if lowered.flag.is_some() { len } else { 0 }];
    for (m, &(rfh, vrf)) in members.iter().enumerate() {
        for (k, &reg) in lowered.data.iter().enumerate() {
            let col = mpu
                .read_register(rfh, vrf, reg.0 as u8)
                .map_err(|e| DpError::Sim(e.to_string()))?;
            for (lane, &v) in col.iter().enumerate() {
                let e = (m * lanes + lane) * lowered.seg + k;
                if e < len {
                    vals[e] = v;
                }
            }
        }
        if let Some(f) = lowered.flag {
            let col =
                mpu.read_register(rfh, vrf, f.0 as u8).map_err(|e| DpError::Sim(e.to_string()))?;
            for (lane, &v) in col.iter().enumerate() {
                let e = (m * lanes + lane) * lowered.seg;
                if e < len {
                    flags[e] = v;
                }
            }
        }
    }
    Ok((vals, flags))
}

/// Applies the pipeline's map/zip stages to one element on the host —
/// used for the ragged (< SEG) tail of a reduce chunk, whose lane is
/// masked out on-device. Only reachable on the unflagged path, so no
/// filter stages exist.
fn host_apply(stages: &[Stage], columns: &[&[u64]], idx: usize, x0: u64) -> u64 {
    let mut x = x0;
    for &stage in stages {
        match stage {
            Stage::Map(op) => x = apply_map(op, x),
            Stage::Zip { column, op } => x = apply_zip(op, x, columns[column][idx]),
            Stage::Filter(_) | Stage::Scan(_) | Stage::Reduce(_) => break,
        }
    }
    x
}

/// Reads the per-lane reduction partials (`d0` of every member) back.
fn read_partials(
    mpu: &mut Mpu,
    lowered: &Lowered,
    members: &[(u16, u16)],
) -> Result<Vec<u64>, DpError> {
    let mut out = Vec::new();
    for &(rfh, vrf) in members {
        out.extend(
            mpu.read_register(rfh, vrf, lowered.data[0].0 as u8)
                .map_err(|e| DpError::Sim(e.to_string()))?,
        );
    }
    Ok(out)
}

impl Pipeline {
    /// Runs the pipeline on a single simulated MPU.
    ///
    /// `columns` are the zip inputs, indexed by the `column` argument of
    /// [`Pipeline::zip`]; each must match `primary` in length.
    ///
    /// # Errors
    ///
    /// Lowering errors ([`DpError::MaskPoolExhausted`] etc.), input-shape
    /// errors, or [`DpError::Sim`] from the simulator.
    pub fn run(
        &self,
        config: &SimConfig,
        primary: &[u64],
        columns: &[&[u64]],
    ) -> Result<PipelineRun, DpError> {
        self.run_sharded(config, 1, primary, columns)
    }

    /// Runs the pipeline with each launch sharded across `mpus` MPUs
    /// (clamped to the chip budget). Reductions aggregate on-device over
    /// SEND/RECV; other pipelines shard with independent readback.
    ///
    /// # Errors
    ///
    /// As for [`Pipeline::run`].
    pub fn run_sharded(
        &self,
        config: &SimConfig,
        mpus: usize,
        primary: &[u64],
        columns: &[&[u64]],
    ) -> Result<PipelineRun, DpError> {
        let terminal = self.validate(columns.len())?;
        let lowered = self.lower()?;
        for &(col, _) in &lowered.zips {
            if columns[col].len() != primary.len() {
                return Err(DpError::ColumnLengthMismatch {
                    column: col,
                    len: columns[col].len(),
                    expected: primary.len(),
                });
            }
        }

        let reduce_op = match terminal {
            Some(Stage::Reduce(op)) => Some(op),
            _ => None,
        };
        let mut run = PipelineRun {
            values: Vec::new(),
            reduced: reduce_op.map(|op| op.identity()),
            stats: Stats::default(),
            launches: 0,
        };
        if primary.is_empty() {
            return Ok(run);
        }

        let (members, lanes) = member_layout(config);
        let g = config.datapath.geometry();
        let mpus = mpus.clamp(1, g.mpus_per_chip);
        let cap = members.len() * lanes * lowered.seg;

        // Running wrapping prefix for scan pipelines, carried across
        // chunks.
        let mut scan_carry = 0u64;

        let mut base = 0usize;
        while base < primary.len() {
            // One launch: up to `mpus` chunks of `cap` elements.
            let launch_len = (primary.len() - base).min(cap * mpus);
            let chunk_bounds: Vec<(usize, usize)> = (0..mpus)
                .map(|j| {
                    let s = (base + j * cap).min(base + launch_len);
                    let e = (s + cap).min(base + launch_len);
                    (s, e)
                })
                .filter(|(s, e)| e > s)
                .collect();

            if let (Some(op), true) = (reduce_op, chunk_bounds.len() > 1) {
                // On-device aggregation over SEND/RECV.
                let leaves = chunk_bounds.len() - 1;
                let mut system = System::new(config.clone(), chunk_bounds.len());
                system.set_program(0, lowered.root_program(&members, leaves, op)?);
                let leaf_program = lowered.leaf_program(&members)?;
                for j in 1..chunk_bounds.len() {
                    system.set_program(j, leaf_program.clone());
                }
                for (j, &(s, e)) in chunk_bounds.iter().enumerate() {
                    let zip_chunks: Vec<(usize, &[u64])> =
                        lowered.zips.iter().map(|&(c, _)| (c, &columns[c][s..e])).collect();
                    for ((rfh, vrf, reg), vals) in
                        lowered.launch_inputs(&members, lanes, &primary[s..e], &zip_chunks)
                    {
                        system
                            .mpu_mut(j)
                            .write_register(rfh, vrf, reg, &vals)
                            .map_err(|e| DpError::Sim(e.to_string()))?;
                    }
                }
                let stats = system.run().map_err(|e| DpError::Sim(e.to_string()))?;
                run.stats.merge_sequential(&stats);
                run.launches += 1;
                let partials = read_partials(system.mpu_mut(0), &lowered, &members)?;
                let folded = partials.into_iter().fold(op.identity(), |a, v| op.combine(a, v));
                run.reduced = Some(op.combine(run.reduced.unwrap(), folded));
                for &(s, e) in &chunk_bounds {
                    let full = (e - s) / lowered.seg * lowered.seg;
                    for (i, &p) in primary.iter().enumerate().take(e).skip(s + full) {
                        let v = host_apply(self.stages(), columns, i, p);
                        run.reduced = Some(op.combine(run.reduced.unwrap(), v));
                    }
                }
            } else {
                // Independent chunks: no NoC traffic.
                let program = lowered.program(&members)?;
                let phase2 = lowered.phase2_program(&members)?;
                let mut launch_stats: Option<Stats> = None;
                for &(s, e) in &chunk_bounds {
                    let zip_chunks: Vec<(usize, &[u64])> =
                        lowered.zips.iter().map(|&(c, _)| (c, &columns[c][s..e])).collect();
                    let inputs =
                        lowered.launch_inputs(&members, lanes, &primary[s..e], &zip_chunks);
                    let (stats, mut mpu) = run_single(config.clone(), &program, &inputs)
                        .map_err(|err| DpError::Sim(err.to_string()))?;
                    let mut chunk_stats = stats;
                    let mut launches = 1u64;
                    let (vals, flags) = read_chunk(&mut mpu, &lowered, &members, lanes, e - s)?;
                    match terminal {
                        Some(Stage::Reduce(op)) => {
                            let partials = read_partials(&mut mpu, &lowered, &members)?;
                            let folded =
                                partials.into_iter().fold(op.identity(), |a, v| op.combine(a, v));
                            run.reduced = Some(op.combine(run.reduced.unwrap(), folded));
                            let full = (e - s) / lowered.seg * lowered.seg;
                            for (i, &p) in primary.iter().enumerate().take(e).skip(s + full) {
                                let v = host_apply(self.stages(), columns, i, p);
                                run.reduced = Some(op.combine(run.reduced.unwrap(), v));
                            }
                        }
                        Some(Stage::Scan(_)) => {
                            if let (Some(p2), Some(phase2_ir)) = (&phase2, &lowered.phase2) {
                                // Host-computed per-lane segment offsets,
                                // then the on-device fixup launch.
                                let mut inputs2 = Vec::new();
                                let mut offset = scan_carry;
                                for (m, &(rfh, vrf)) in members.iter().enumerate() {
                                    let lane_base = |lane: usize| (m * lanes + lane) * lowered.seg;
                                    let offsets: Vec<u64> = (0..lanes)
                                        .map(|lane| {
                                            let o = offset;
                                            let last = lane_base(lane) + lowered.seg - 1;
                                            offset = offset.wrapping_add(
                                                vals.get(last.min(vals.len().wrapping_sub(1)))
                                                    .copied()
                                                    .unwrap_or(0),
                                            );
                                            if lane_base(lane) >= vals.len() {
                                                offset = o;
                                            }
                                            o
                                        })
                                        .collect();
                                    inputs2.push(((rfh, vrf, phase2_ir.offset.0 as u8), offsets));
                                    for (k, &reg) in lowered.data.iter().enumerate() {
                                        let col: Vec<u64> = (0..lanes)
                                            .map(|lane| {
                                                vals.get(lane_base(lane) + k).copied().unwrap_or(0)
                                            })
                                            .collect();
                                        inputs2.push(((rfh, vrf, reg.0 as u8), col));
                                    }
                                }
                                scan_carry = offset;
                                let (stats2, mut mpu2) =
                                    run_single(config.clone(), p2, &inputs2)
                                        .map_err(|err| DpError::Sim(err.to_string()))?;
                                chunk_stats.merge_sequential(&stats2);
                                launches += 1;
                                let (fixed, _) =
                                    read_chunk(&mut mpu2, &lowered, &members, lanes, e - s)?;
                                run.values.extend(fixed);
                            } else {
                                // Flag path: dead lanes were masked to 0;
                                // the host completes the scan and keeps
                                // survivors.
                                for (v, f) in vals.iter().zip(&flags) {
                                    scan_carry = scan_carry.wrapping_add(*v);
                                    if *f != 0 {
                                        run.values.push(scan_carry);
                                    }
                                }
                            }
                        }
                        _ => {
                            if lowered.flag.is_some() {
                                run.values.extend(
                                    vals.iter()
                                        .zip(&flags)
                                        .filter(|(_, f)| **f != 0)
                                        .map(|(v, _)| *v),
                                );
                            } else {
                                run.values.extend(vals);
                            }
                        }
                    }
                    run.launches += launches;
                    match &mut launch_stats {
                        None => launch_stats = Some(chunk_stats),
                        Some(acc) => acc.merge_parallel(&chunk_stats),
                    }
                }
                if let Some(s) = launch_stats {
                    run.stats.merge_sequential(&s);
                }
            }
            base += launch_len;
        }
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use crate::pipeline::{MapOp, Pipeline, Pred, ReduceOp, ScanOp, ZipOp};
    use mastodon::SimConfig;
    use pum_backend::DatapathKind;

    fn cfg() -> SimConfig {
        SimConfig::mpu(DatapathKind::Racer)
    }

    #[test]
    fn map_matches_oracle_at_odd_lengths() {
        let p = Pipeline::new().map(MapOp::Add(7)).map(MapOp::Xor(0x55));
        for n in [1usize, 63, 64, 65, 200] {
            let data: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
            let want = p.oracle(&data, &[]).unwrap();
            let got = p.run(&cfg(), &data, &[]).unwrap();
            assert_eq!(got.values, want.values, "n={n}");
        }
    }

    #[test]
    fn filtered_count_matches_oracle() {
        let data: Vec<u64> = (0..1000).collect();
        let p = Pipeline::new().map(MapOp::And(3)).filter(Pred::Eq(3)).reduce(ReduceOp::Count);
        let run = p.run(&cfg(), &data, &[]).unwrap();
        assert_eq!(run.reduced, Some(250));
        assert_eq!(run.reduced, p.oracle(&data, &[]).unwrap().reduced);
    }

    #[test]
    fn zip_mul_sum_matches_oracle() {
        let a: Vec<u64> = (0..300).map(|i| i * 3 + 1).collect();
        let b: Vec<u64> = (0..300).map(|i| i ^ 0xABCD).collect();
        let p = Pipeline::new().zip(0, ZipOp::Mul).reduce(ReduceOp::Sum);
        let run = p.run(&cfg(), &a, &[&b]).unwrap();
        assert_eq!(run.reduced, p.oracle(&a, &[&b]).unwrap().reduced);
    }

    #[test]
    fn scan_matches_oracle_across_chunks() {
        let data: Vec<u64> = (0..5000).map(|i| i % 97).collect();
        let p = Pipeline::new().scan(ScanOp::Sum);
        let run = p.run(&cfg(), &data, &[]).unwrap();
        assert_eq!(run.values, p.oracle(&data, &[]).unwrap().values);
        assert!(run.launches >= 2, "scan is two-launch");
    }

    #[test]
    fn sharded_reduce_aggregates_over_the_noc() {
        let data: Vec<u64> = (0..9000).map(|i| i ^ (i << 7)).collect();
        let p = Pipeline::new().map(MapOp::And(0xffff)).reduce(ReduceOp::Sum);
        let single = p.run(&cfg(), &data, &[]).unwrap();
        let sharded = p.run_sharded(&cfg(), 4, &data, &[]).unwrap();
        assert_eq!(single.reduced, sharded.reduced);
        assert_eq!(sharded.reduced, p.oracle(&data, &[]).unwrap().reduced);
        assert!(sharded.launches < single.launches);
    }

    #[test]
    fn empty_input_skips_the_simulator() {
        let p = Pipeline::new().reduce(ReduceOp::Min);
        let run = p.run(&cfg(), &[], &[]).unwrap();
        assert_eq!(run.reduced, Some(u64::MAX));
        assert_eq!(run.launches, 0);
    }
}
