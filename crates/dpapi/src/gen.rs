//! Random pipeline generation for differential testing.
//!
//! [`random_pipeline`] builds a seed-deterministic, always-lowerable
//! pipeline plus matching input columns. The dpapi proptests and the
//! conformance generator's dpapi-pipeline case family both draw from
//! this one source, so "random pipeline" means the same distribution
//! everywhere.

use crate::pipeline::{MapOp, Pipeline, Pred, ReduceOp, ScanOp, Stage, ZipOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated pipeline together with inputs shaped to fit it.
#[derive(Debug, Clone)]
pub struct RandomPipeline {
    /// The generated stage list (always lowers successfully).
    pub pipeline: Pipeline,
    /// The primary input column.
    pub primary: Vec<u64>,
    /// Zip columns, indexed as the pipeline's `zip` stages expect.
    pub columns: Vec<Vec<u64>>,
}

impl RandomPipeline {
    /// The zip columns as the slice-of-slices shape `run`/`oracle` take.
    pub fn column_refs(&self) -> Vec<&[u64]> {
        self.columns.iter().map(|c| c.as_slice()).collect()
    }
}

fn random_map(rng: &mut StdRng) -> MapOp {
    let c = rng.random_range(0..1u64 << 32);
    match rng.random_range(0..12u32) {
        0 => MapOp::Add(c),
        1 => MapOp::Sub(c),
        2 => MapOp::Mul(c),
        3 => MapOp::And(c),
        4 => MapOp::Or(c),
        5 => MapOp::Xor(c),
        6 => MapOp::Min(c),
        7 => MapOp::Max(c),
        // Eq keeps small constants so it sometimes matches.
        8 => MapOp::Eq(c & 0x7),
        9 => MapOp::Not,
        10 => MapOp::Popc,
        _ => MapOp::Shl1,
    }
}

fn random_zip_op(rng: &mut StdRng) -> ZipOp {
    match rng.random_range(0..8u32) {
        0 => ZipOp::Add,
        1 => ZipOp::Sub,
        2 => ZipOp::Mul,
        3 => ZipOp::Min,
        4 => ZipOp::Max,
        5 => ZipOp::And,
        6 => ZipOp::Or,
        _ => ZipOp::Xor,
    }
}

fn random_pred(rng: &mut StdRng) -> Pred {
    // Mid-range thresholds so filters pass roughly half the elements;
    // Eq compares low bits so it actually fires.
    match rng.random_range(0..3u32) {
        0 => Pred::Gt(rng.random_range(0..1u64 << 31)),
        1 => Pred::Lt(rng.random_range(0..1u64 << 31)),
        _ => Pred::Eq(rng.random_range(0..4u64)),
    }
}

fn random_reduce(rng: &mut StdRng) -> ReduceOp {
    match rng.random_range(0..7u32) {
        0 => ReduceOp::Sum,
        1 => ReduceOp::Min,
        2 => ReduceOp::Max,
        3 => ReduceOp::And,
        4 => ReduceOp::Or,
        5 => ReduceOp::Xor,
        _ => ReduceOp::Count,
    }
}

/// Generates a seed-deterministic pipeline and matching inputs.
///
/// The generator respects the lowering's budget by construction: at most
/// two filters, at most one zip column, and an `Eq` map only while a
/// mask level is free — so every generated pipeline lowers.
pub fn random_pipeline(seed: u64) -> RandomPipeline {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6470_6170_695f_6765);
    let n = match rng.random_range(0..4u32) {
        0 => rng.random_range(0..3usize),
        1 => rng.random_range(3..64usize),
        2 => rng.random_range(64..66usize),
        _ => rng.random_range(66..600usize),
    };
    let zips = rng.random_range(0..=1usize);

    let mut p = Pipeline::new();
    let mut filters = 0usize;
    let stages = rng.random_range(1..=4usize);
    for _ in 0..stages {
        match rng.random_range(0..5u32) {
            0 | 1 => {
                let op = random_map(&mut rng);
                if matches!(op, MapOp::Eq(_)) && filters >= 2 {
                    p = p.map(MapOp::Add(1));
                } else {
                    p = p.map(op);
                }
            }
            2 if zips > 0 => p = p.zip(0, random_zip_op(&mut rng)),
            3 if filters < 2 => {
                filters += 1;
                p = p.filter(random_pred(&mut rng));
            }
            _ => p = p.map(random_map(&mut rng)),
        }
    }
    // Recheck: the fallback arm may have drawn an Eq map at full depth.
    let at_depth = p
        .stages()
        .iter()
        .scan(0usize, |open, s| {
            if matches!(s, Stage::Filter(_)) {
                *open += 1;
            }
            Some(*open >= 2 && matches!(s, Stage::Map(MapOp::Eq(_))))
        })
        .any(|x| x);
    if at_depth {
        let fixed: Vec<Stage> =
            p.stages()
                .iter()
                .map(|s| {
                    if matches!(s, Stage::Map(MapOp::Eq(_))) {
                        Stage::Map(MapOp::Add(1))
                    } else {
                        *s
                    }
                })
                .collect();
        p = Pipeline::from_stages(fixed);
    }
    match rng.random_range(0..3u32) {
        0 => p = p.reduce(random_reduce(&mut rng)),
        1 if filters == 0 => p = p.scan(ScanOp::Sum),
        _ => {}
    }

    let primary: Vec<u64> = (0..n).map(|_| rng.random_range(0..1u64 << 32)).collect();
    let columns: Vec<Vec<u64>> =
        (0..zips).map(|_| (0..n).map(|_| rng.random_range(0..1u64 << 32)).collect()).collect();
    RandomPipeline { pipeline: p, primary, columns }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_pipelines_always_lower() {
        for seed in 0..200u64 {
            let rp = random_pipeline(seed);
            rp.pipeline
                .lower()
                .unwrap_or_else(|e| panic!("seed {seed}: {:?} failed to lower: {e}", rp.pipeline));
            for c in &rp.columns {
                assert_eq!(c.len(), rp.primary.len());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_pipeline(42);
        let b = random_pipeline(42);
        assert_eq!(a.pipeline, b.pipeline);
        assert_eq!(a.primary, b.primary);
    }
}
