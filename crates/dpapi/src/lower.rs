//! Lowering: from a stage list to registers, a [`Kop`] IR, and ezpim.
//!
//! ## Register layout (r0–r9; r10–r15 stay reserved per the register
//! conventions)
//!
//! - `d0..d{SEG-1}` — SEG elements of the primary column per lane;
//! - one SEG-register block per distinct zip column;
//! - one broadcast register per distinct immediate constant;
//! - an optional scratch register (MUL cannot alias its destination);
//! - on the *flag path*: `v` (host-loaded validity, 1 for real elements,
//!   0 for padding) and `f` (the keep flag the filter nest computes).
//!
//! SEG is the largest of {8, 4, 2, 1} that fits the budget; pipelines
//! with a `filter` (or `reduce(Count)`) force SEG = 1 because predication
//! masks whole lanes, so each lane must hold exactly one element.
//!
//! ## Lowering rules
//!
//! - `map`/`zip` unroll element-wise over the SEG registers;
//! - each `filter` opens one `if` nesting level and *stays open* for the
//!   rest of the pipeline (later stages execute only on surviving lanes,
//!   like real PIM predication); the innermost level ends with
//!   `f ← v`, so `f` is exactly `validity ∧ all predicates`. A chain of
//!   more than two filters exceeds the two-level mask pool and is
//!   rejected at build time with the offending stage index;
//! - `reduce` closes the nest, masks dead lanes to the fold identity
//!   (predicated on `f == 0`), then runs a log-depth in-register tree;
//!   lanes/members/launches fold on the host, and sharded runs aggregate
//!   per-MPU partials over SEND/RECV first;
//! - `scan` runs log-depth Hillis–Steele rounds per lane segment
//!   (phase 1); the host exclusive-scans the segment totals and a second
//!   launch (phase 2) adds each lane's offset register to its segment.

use crate::pipeline::{MapOp, Pipeline, Pred, ReduceOp, Stage, ZipOp};
use crate::DpError;
use ezpim::{Body, Cond, EzProgram};
use mpu_isa::{BinaryOp, InitValue, Instruction, Program, RegId, UnaryOp};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Writable architectural registers (r0–r9): r10–r13 are the ezpim mask
/// pool and r14/r15 are recipe temporaries.
pub const WRITABLE_REGS: usize = 10;

/// Mask-pool nesting levels the default ezpim pool supports.
pub const MASK_LEVELS: usize = 2;

/// A lowered compute statement: a tree mirror of the ezpim builder
/// calls, so one lowering can replay into the builder, print as ezpim
/// text, and convert into conformance-case statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Kop {
    /// A straight-line instruction.
    Op(Instruction),
    /// `if (cond) { then }` predication.
    If {
        /// The lane predicate.
        cond: Cond,
        /// The predicated body.
        then: Vec<Kop>,
    },
    /// `if (cond) { then } else { otherwise }` predication.
    IfElse {
        /// The lane predicate.
        cond: Cond,
        /// The taken body.
        then: Vec<Kop>,
        /// The not-taken body.
        otherwise: Vec<Kop>,
    },
}

/// The phase-2 (scan offset fixup) program of a two-launch scan.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase2 {
    /// Host-computed per-lane segment offset, loaded as an input.
    pub offset: RegId,
    /// The fixup body: `d_k += offset` for every segment register.
    pub kops: Vec<Kop>,
}

/// A fully lowered pipeline: register assignments plus the compute body.
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered {
    /// Elements per lane (segment length).
    pub seg: usize,
    /// The SEG primary-column data registers.
    pub data: Vec<RegId>,
    /// Per zip column: `(column index, SEG registers)`.
    pub zips: Vec<(usize, Vec<RegId>)>,
    /// Broadcast immediates: `(register, value)`.
    pub consts: Vec<(RegId, u64)>,
    /// Scratch register for MUL results (also the SEND/RECV landing slot
    /// for sharded reductions when no data register is free).
    pub scratch: Option<RegId>,
    /// Host-loaded validity column (flag path only).
    pub valid: Option<RegId>,
    /// The computed keep flag (flag path only).
    pub flag: Option<RegId>,
    /// The phase-1 compute body.
    pub kops: Vec<Kop>,
    /// The phase-2 scan fixup, when the pipeline ends in an unfiltered
    /// scan.
    pub phase2: Option<Phase2>,
    /// The terminal stage, if any.
    pub terminal: Option<Stage>,
}

fn r(i: usize) -> RegId {
    RegId(i as u16)
}

fn binary(op: BinaryOp, rs: RegId, rt: RegId, rd: RegId) -> Kop {
    Kop::Op(Instruction::Binary { op, rs, rt, rd })
}

fn unary(op: UnaryOp, rs: RegId, rd: RegId) -> Kop {
    Kop::Op(Instruction::Unary { op, rs, rd })
}

fn init0(rd: RegId) -> Kop {
    Kop::Op(Instruction::Init { value: InitValue::Zero, rd })
}

fn init1(rd: RegId) -> Kop {
    Kop::Op(Instruction::Init { value: InitValue::One, rd })
}

impl ReduceOp {
    /// Kops writing this op's fold identity into `rd`.
    fn identity_kops(self, rd: RegId) -> Vec<Kop> {
        if self.identity() == 0 {
            vec![init0(rd)]
        } else {
            // All-ones: zero then invert.
            vec![init0(rd), unary(UnaryOp::Inv, rd, rd)]
        }
    }

    /// The combining ALU op of the reduction tree.
    fn binary_op(self) -> BinaryOp {
        match self {
            ReduceOp::Sum | ReduceOp::Count => BinaryOp::Add,
            ReduceOp::Min => BinaryOp::Min,
            ReduceOp::Max => BinaryOp::Max,
            ReduceOp::And => BinaryOp::And,
            ReduceOp::Or => BinaryOp::Or,
            ReduceOp::Xor => BinaryOp::Xor,
        }
    }
}

struct Ctx {
    seg: usize,
    data: Vec<RegId>,
    zip_cols: Vec<usize>,
    zip_regs: Vec<Vec<RegId>>,
    consts: Vec<(RegId, u64)>,
    scratch: Option<RegId>,
    valid: Option<RegId>,
    flag: Option<RegId>,
    has_filters: bool,
}

impl Ctx {
    fn creg(&self, value: u64) -> RegId {
        self.consts
            .iter()
            .find(|(_, v)| *v == value)
            .map(|(reg, _)| *reg)
            .expect("constant was collected during allocation")
    }

    fn zreg(&self, column: usize, k: usize) -> RegId {
        let pos = self.zip_cols.iter().position(|&c| c == column).expect("zip column allocated");
        self.zip_regs[pos][k]
    }

    fn map_kops(&self, op: MapOp, d: RegId) -> Vec<Kop> {
        let t = self.scratch;
        match op {
            MapOp::Add(c) => vec![binary(BinaryOp::Add, d, self.creg(c), d)],
            MapOp::Sub(c) => vec![binary(BinaryOp::Sub, d, self.creg(c), d)],
            MapOp::Mul(c) => {
                let t = t.expect("mul reserves scratch");
                vec![binary(BinaryOp::Mul, d, self.creg(c), t), unary(UnaryOp::Mov, t, d)]
            }
            MapOp::And(c) => vec![binary(BinaryOp::And, d, self.creg(c), d)],
            MapOp::Or(c) => vec![binary(BinaryOp::Or, d, self.creg(c), d)],
            MapOp::Xor(c) => vec![binary(BinaryOp::Xor, d, self.creg(c), d)],
            MapOp::Min(c) => vec![binary(BinaryOp::Min, d, self.creg(c), d)],
            MapOp::Max(c) => vec![binary(BinaryOp::Max, d, self.creg(c), d)],
            MapOp::Eq(c) => vec![Kop::IfElse {
                cond: Cond::Eq(d, self.creg(c)),
                then: vec![init1(d)],
                otherwise: vec![init0(d)],
            }],
            MapOp::Not => vec![unary(UnaryOp::Inv, d, d)],
            MapOp::Popc => vec![unary(UnaryOp::Popc, d, d)],
            MapOp::Shl1 => vec![unary(UnaryOp::LShift, d, d)],
        }
    }

    fn zip_kops(&self, op: ZipOp, d: RegId, z: RegId) -> Vec<Kop> {
        match op {
            ZipOp::Add => vec![binary(BinaryOp::Add, d, z, d)],
            ZipOp::Sub => vec![binary(BinaryOp::Sub, d, z, d)],
            ZipOp::Mul => {
                let t = self.scratch.expect("mul reserves scratch");
                vec![binary(BinaryOp::Mul, d, z, t), unary(UnaryOp::Mov, t, d)]
            }
            ZipOp::Min => vec![binary(BinaryOp::Min, d, z, d)],
            ZipOp::Max => vec![binary(BinaryOp::Max, d, z, d)],
            ZipOp::And => vec![binary(BinaryOp::And, d, z, d)],
            ZipOp::Or => vec![binary(BinaryOp::Or, d, z, d)],
            ZipOp::Xor => vec![binary(BinaryOp::Xor, d, z, d)],
        }
    }

    fn pred_cond(&self, pred: Pred, d: RegId) -> Cond {
        match pred {
            Pred::Gt(c) => Cond::Gt(d, self.creg(c)),
            Pred::Lt(c) => Cond::Lt(d, self.creg(c)),
            Pred::Eq(c) => Cond::Eq(d, self.creg(c)),
        }
    }

    /// Lowers `body[idx..]`; each filter nests the remainder inside its
    /// `if`, and the innermost point marks survivors with `f ← v`.
    fn lower_from(&self, body: &[Stage], idx: usize) -> Vec<Kop> {
        let mut out = Vec::new();
        for (i, &stage) in body.iter().enumerate().skip(idx) {
            match stage {
                Stage::Map(op) => {
                    for k in 0..self.seg {
                        out.extend(self.map_kops(op, self.data[k]));
                    }
                }
                Stage::Zip { column, op } => {
                    for k in 0..self.seg {
                        out.extend(self.zip_kops(op, self.data[k], self.zreg(column, k)));
                    }
                }
                Stage::Filter(pred) => {
                    out.push(Kop::If {
                        cond: self.pred_cond(pred, self.data[0]),
                        then: self.lower_from(body, i + 1),
                    });
                    return out;
                }
                Stage::Scan(_) | Stage::Reduce(_) => unreachable!("terminal stripped from body"),
            }
        }
        if self.has_filters {
            let (v, f) = (self.valid.unwrap(), self.flag.unwrap());
            out.push(unary(UnaryOp::Mov, v, f));
        }
        out
    }
}

impl Pipeline {
    /// Lowers the pipeline: allocates registers, checks the mask-pool
    /// budget, and produces the [`Kop`] body (plus the phase-2 fixup for
    /// two-launch scans).
    ///
    /// # Errors
    ///
    /// [`DpError::TerminalNotLast`], [`DpError::MaskPoolExhausted`] (with
    /// the offending stage index), or [`DpError::RegisterPressure`].
    pub fn lower(&self) -> Result<Lowered, DpError> {
        let columns = self
            .stages()
            .iter()
            .filter_map(|s| match s {
                Stage::Zip { column, .. } => Some(column + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let terminal = self.validate(columns)?;

        // Mask-depth pre-check: each filter holds a level open for the
        // rest of the pipeline; an Eq map needs one transient level.
        let mut open = 0usize;
        for (i, &stage) in self.stages().iter().enumerate() {
            let needs = match stage {
                Stage::Filter(_) => {
                    open += 1;
                    open
                }
                Stage::Map(MapOp::Eq(_)) => open + 1,
                _ => continue,
            };
            if needs > MASK_LEVELS {
                return Err(DpError::MaskPoolExhausted { stage: i });
            }
        }
        let has_filters = open > 0;

        let is_count = terminal == Some(Stage::Reduce(ReduceOp::Count));
        let flagged = has_filters || is_count;
        // An unflagged reduce still needs a validity column: padding
        // lanes pass through the map/zip stages, so their values are NOT
        // the fold identity — they are masked to it on-device, and the
        // host folds the ragged (< SEG) tail itself.
        let reduce_mask = matches!(terminal, Some(Stage::Reduce(_))) && !flagged;
        let needs_scratch = self
            .stages()
            .iter()
            .any(|s| matches!(s, Stage::Map(MapOp::Mul(_)) | Stage::Zip { op: ZipOp::Mul, .. }));

        // Broadcast immediates, plus 0 for the dead-lane identity mask.
        let mut const_vals: BTreeSet<u64> = BTreeSet::new();
        for &stage in self.stages() {
            match stage {
                Stage::Map(
                    MapOp::Add(c)
                    | MapOp::Sub(c)
                    | MapOp::Mul(c)
                    | MapOp::And(c)
                    | MapOp::Or(c)
                    | MapOp::Xor(c)
                    | MapOp::Min(c)
                    | MapOp::Max(c)
                    | MapOp::Eq(c),
                )
                | Stage::Filter(Pred::Gt(c) | Pred::Lt(c) | Pred::Eq(c)) => {
                    const_vals.insert(c);
                }
                _ => {}
            }
        }
        if reduce_mask || (flagged && terminal.is_some() && !is_count) {
            const_vals.insert(0);
        }

        let zip_cols: Vec<usize> = {
            let mut seen = Vec::new();
            for &stage in self.stages() {
                if let Stage::Zip { column, .. } = stage {
                    if !seen.contains(&column) {
                        seen.push(column);
                    }
                }
            }
            seen
        };

        let per_elem = 1 + zip_cols.len();
        let valid_needed = flagged || reduce_mask;
        let fixed = const_vals.len()
            + usize::from(needs_scratch)
            + usize::from(valid_needed)
            + usize::from(flagged);
        let seg = if flagged {
            1
        } else {
            [8usize, 4, 2, 1]
                .into_iter()
                .find(|s| s * per_elem + fixed <= WRITABLE_REGS)
                .unwrap_or(1)
        };
        let needed = seg * per_elem + fixed;
        if needed > WRITABLE_REGS {
            return Err(DpError::RegisterPressure { needed, available: WRITABLE_REGS });
        }

        // Assign registers in layout order.
        let mut next = 0usize;
        let mut take = |n: usize| {
            let base = next;
            next += n;
            (base..base + n).map(r).collect::<Vec<_>>()
        };
        let data = take(seg);
        let zip_regs: Vec<Vec<RegId>> = zip_cols.iter().map(|_| take(seg)).collect();
        let const_regs = take(const_vals.len());
        let consts: Vec<(RegId, u64)> =
            const_regs.into_iter().zip(const_vals.iter().copied()).collect();
        let scratch = needs_scratch.then(|| take(1)[0]);
        let valid = valid_needed.then(|| take(1)[0]);
        let flag = flagged.then(|| take(1)[0]);

        let ctx = Ctx {
            seg,
            data: data.clone(),
            zip_cols: zip_cols.clone(),
            zip_regs: zip_regs.clone(),
            consts: consts.clone(),
            scratch,
            valid,
            flag,
            has_filters,
        };

        // Phase-1 body: prelude, the (possibly nested) stage walk, then
        // the terminal.
        let body_end = self.stages().len() - usize::from(terminal.is_some());
        let mut kops = Vec::new();
        if flagged {
            let (v, f) = (valid.unwrap(), flag.unwrap());
            if has_filters {
                kops.push(init0(f));
            } else {
                kops.push(unary(UnaryOp::Mov, v, f));
            }
        }
        kops.extend(ctx.lower_from(&self.stages()[..body_end], 0));

        let mut phase2 = None;
        match terminal {
            Some(Stage::Reduce(op)) => {
                let d0 = data[0];
                if flagged {
                    let f = flag.unwrap();
                    if is_count {
                        kops.push(unary(UnaryOp::Mov, f, d0));
                    } else {
                        kops.push(Kop::If {
                            cond: Cond::Eq(f, ctx.creg(0)),
                            then: op.identity_kops(d0),
                        });
                    }
                } else {
                    // Lanes without a fully-real segment fold as the
                    // identity; the host picks up their real elements.
                    let v = valid.unwrap();
                    kops.push(Kop::If {
                        cond: Cond::Eq(v, ctx.creg(0)),
                        then: (0..seg).flat_map(|k| op.identity_kops(data[k])).collect(),
                    });
                }
                // Log-depth in-register tree into d0.
                let alu = op.binary_op();
                let mut gap = 1;
                while gap < seg {
                    let mut i = 0;
                    while i + gap < seg {
                        kops.push(binary(alu, data[i + gap], data[i], data[i]));
                        i += 2 * gap;
                    }
                    gap *= 2;
                }
            }
            Some(Stage::Scan(_)) => {
                if flagged {
                    // Dead lanes contribute the sum identity; the host
                    // completes the scan (see exec).
                    let f = flag.unwrap();
                    kops.push(Kop::If {
                        cond: Cond::Eq(f, ctx.creg(0)),
                        then: vec![init0(data[0])],
                    });
                } else {
                    // Log-depth Hillis–Steele inclusive scan per segment;
                    // descending i so each round reads pre-round values.
                    let mut d = 1;
                    while d < seg {
                        for i in (d..seg).rev() {
                            kops.push(binary(BinaryOp::Add, data[i - d], data[i], data[i]));
                        }
                        d *= 2;
                    }
                    let offset = r(seg);
                    let fixup =
                        (0..seg).map(|k| binary(BinaryOp::Add, offset, data[k], data[k])).collect();
                    phase2 = Some(Phase2 { offset, kops: fixup });
                }
            }
            _ => {}
        }

        Ok(Lowered {
            seg,
            data,
            zips: zip_cols.into_iter().zip(zip_regs).collect(),
            consts,
            scratch,
            valid,
            flag,
            kops,
            phase2,
            terminal,
        })
    }
}

/// Replays kops into an ezpim [`Body`].
pub fn emit_kops(b: &mut Body<'_>, kops: &[Kop]) {
    for kop in kops {
        match kop {
            Kop::Op(i) => {
                b.op(*i);
            }
            Kop::If { cond, then } => {
                b.if_then(*cond, |b| emit_kops(b, then));
            }
            Kop::IfElse { cond, then, otherwise } => {
                b.if_else(*cond, |b| emit_kops(b, then), |b| emit_kops(b, otherwise));
            }
        }
    }
}

fn cond_text(c: &Cond) -> String {
    match *c {
        Cond::Eq(a, b) => format!("r{} == r{}", a.0, b.0),
        Cond::Gt(a, b) => format!("r{} > r{}", a.0, b.0),
        Cond::Lt(a, b) => format!("r{} < r{}", a.0, b.0),
        Cond::Fuzzy(a, b, skip) => format!("r{} ~= r{} skip r{}", a.0, b.0, skip.0),
    }
}

fn print_kops(out: &mut String, kops: &[Kop], indent: usize) {
    let pad = "    ".repeat(indent);
    for kop in kops {
        match kop {
            Kop::Op(i) => {
                let _ = writeln!(out, "{pad}{i}");
            }
            Kop::If { cond, then } => {
                let _ = writeln!(out, "{pad}if {} {{", cond_text(cond));
                print_kops(out, then, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Kop::IfElse { cond, then, otherwise } => {
                let _ = writeln!(out, "{pad}if {} {{", cond_text(cond));
                print_kops(out, then, indent + 1);
                let _ = writeln!(out, "{pad}}} else {{");
                print_kops(out, otherwise, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

fn ensemble_text(members: &[(u16, u16)], kops: &[Kop]) -> String {
    let ms = members.iter().map(|(h, v)| format!("h{h}.v{v}")).collect::<Vec<_>>().join(" ");
    let mut out = format!("ensemble {ms} {{\n");
    print_kops(&mut out, kops, 1);
    out.push_str("}\n");
    out
}

fn assemble(members: &[(u16, u16)], kops: &[Kop]) -> Result<Program, DpError> {
    let mut ez = EzProgram::new();
    ez.ensemble(members, |b| emit_kops(b, kops)).map_err(|e| DpError::Sim(e.to_string()))?;
    ez.assemble().map_err(|e| DpError::Sim(e.to_string()))
}

impl Lowered {
    /// The phase-1 compute program over `members`.
    ///
    /// # Errors
    ///
    /// [`DpError::Sim`] if ezpim rejects the body (pre-validated, so
    /// effectively unreachable).
    pub fn program(&self, members: &[(u16, u16)]) -> Result<Program, DpError> {
        assemble(members, &self.kops)
    }

    /// The phase-2 fixup program, for two-launch scans.
    ///
    /// # Errors
    ///
    /// [`DpError::Sim`] as for [`Lowered::program`].
    pub fn phase2_program(&self, members: &[(u16, u16)]) -> Result<Option<Program>, DpError> {
        self.phase2.as_ref().map(|p| assemble(members, &p.kops)).transpose()
    }

    /// The phase-1 program as ezpim text (parses and assembles back to
    /// exactly [`Lowered::program`]; the round-trip is property-tested).
    pub fn ezpim_text(&self, members: &[(u16, u16)]) -> String {
        ensemble_text(members, &self.kops)
    }

    /// The phase-2 program as ezpim text.
    pub fn phase2_text(&self, members: &[(u16, u16)]) -> Option<String> {
        self.phase2.as_ref().map(|p| ensemble_text(members, &p.kops))
    }

    /// Registers the host reads back per member: the data segment, plus
    /// the keep flag on the flag path.
    pub fn output_regs(&self, members: &[(u16, u16)]) -> Vec<(u16, u16, u8)> {
        let mut regs: Vec<u8> = self.data.iter().map(|d| d.0 as u8).collect();
        if let Some(f) = self.flag {
            regs.push(f.0 as u8);
        }
        members
            .iter()
            .flat_map(|&(rfh, vrf)| regs.iter().map(move |&reg| (rfh, vrf, reg)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ScanOp;

    #[test]
    fn three_filters_exhaust_the_pool_at_build_time() {
        let p = Pipeline::new()
            .filter(Pred::Gt(1))
            .filter(Pred::Gt(2))
            .filter(Pred::Gt(3))
            .reduce(ReduceOp::Sum);
        assert_eq!(p.lower(), Err(DpError::MaskPoolExhausted { stage: 2 }));
    }

    #[test]
    fn eq_map_under_two_filters_exhausts_the_pool() {
        let p = Pipeline::new().filter(Pred::Gt(1)).filter(Pred::Gt(2)).map(MapOp::Eq(5));
        assert_eq!(p.lower(), Err(DpError::MaskPoolExhausted { stage: 2 }));
    }

    #[test]
    fn seg_widens_without_filters_and_narrows_with_zips() {
        let plain = Pipeline::new().map(MapOp::Add(1)).lower().unwrap();
        assert_eq!(plain.seg, 8);
        let zipped = Pipeline::new().zip(0, ZipOp::Add).lower().unwrap();
        assert_eq!(zipped.seg, 4); // 2 columns × 4 regs + 0 consts
        let filtered = Pipeline::new().filter(Pred::Gt(0)).lower().unwrap();
        assert_eq!(filtered.seg, 1);
        assert!(filtered.valid.is_some() && filtered.flag.is_some());
    }

    #[test]
    fn scan_lowers_to_two_phases() {
        let p = Pipeline::new().scan(ScanOp::Sum).lower().unwrap();
        assert_eq!(p.seg, 8);
        let phase2 = p.phase2.expect("unfiltered scan is two-launch");
        assert_eq!(phase2.kops.len(), 8);
    }

    #[test]
    fn lowered_program_assembles() {
        let p = Pipeline::new()
            .map(MapOp::And(3))
            .filter(Pred::Eq(3))
            .reduce(ReduceOp::Count)
            .lower()
            .unwrap();
        let program = p.program(&[(0, 0), (1, 0)]).unwrap();
        assert!(program.len() > 4);
    }

    #[test]
    fn text_round_trips_through_the_parser() {
        let p = Pipeline::new().map(MapOp::Eq(7)).zip(0, ZipOp::Add).lower().unwrap();
        let members = [(0u16, 0u16), (1, 0)];
        let text = p.ezpim_text(&members);
        let parsed = ezpim::parse(&text).unwrap().assemble().unwrap();
        assert_eq!(parsed, p.program(&members).unwrap());
    }
}
