//! # ezpim — the MPU advanced assembler
//!
//! The paper's ezpim lets programmers write MPU programs with the control
//! semantics of high-level languages — `if`/`else`, `for`/`while` loops,
//! subroutines — and lowers them to Table II instructions (Fig. 7):
//! comparisons feed the conditional register, `SETMASK`/`GETMASK`/`UNMASK`
//! implement arbitrarily nested predication, `JUMP_COND` closes dynamic
//! loops, and `JUMP`/`RETURN` realize subroutine calls.
//!
//! Two front ends are provided:
//!
//! * [`EzProgram`] — a typed builder API (what the workload generators
//!   use);
//! * [`parse`] — a textual ezpim language with `ensemble`, `while`, `if`,
//!   `move`, `send`, and `sub` blocks.
//!
//! # Example
//!
//! ```
//! use ezpim::{Cond, EzProgram};
//! use mpu_isa::RegId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ez = EzProgram::new();
//! ez.ensemble(&[(0, 0)], |b| {
//!     b.if_else(
//!         Cond::Gt(RegId(0), RegId(1)),
//!         |b| { b.sub(RegId(0), RegId(1), RegId(2)); },
//!         |b| { b.sub(RegId(1), RegId(0), RegId(2)); },
//!     );
//! })?;
//! let program = ez.assemble()?; // validated Table II binary
//! # let _ = program;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod parser;

pub use builder::{Body, Cond, EzError, EzProgram, SendBlock, Transfer};
pub use parser::{parse, ParseError};
