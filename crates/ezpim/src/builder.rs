//! The ezpim builder API: structured MPU programs with high-level control
//! flow, lowered to Table II instructions exactly as the paper's Fig. 7
//! describes (predication via the conditional register, `GETMASK`/`SETMASK`
//! mask arithmetic for arbitrary nesting, `JUMP_COND` dynamic loops,
//! `JUMP`/`RETURN` subroutines).

use mpu_isa::{
    BinaryOp, CompareOp, InitValue, Instruction, LineNum, MpuId, Program, RegId, RfhId, UnaryOp,
    VrfId, COND_REG,
};
use std::collections::HashMap;
use std::fmt;

/// A condition usable in `if`/`while` constructs; evaluates into the
/// conditional register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// `rs == rt`.
    Eq(RegId, RegId),
    /// `rs > rt` (unsigned).
    Gt(RegId, RegId),
    /// `rs < rt` (unsigned).
    Lt(RegId, RegId),
    /// Fuzzy equality, skipping bit positions set in the third register.
    Fuzzy(RegId, RegId, RegId),
}

impl Cond {
    fn instruction(self) -> Instruction {
        match self {
            Cond::Eq(rs, rt) => Instruction::Compare { op: CompareOp::Eq, rs, rt },
            Cond::Gt(rs, rt) => Instruction::Compare { op: CompareOp::Gt, rs, rt },
            Cond::Lt(rs, rt) => Instruction::Compare { op: CompareOp::Lt, rs, rt },
            Cond::Fuzzy(rs, rt, rd) => Instruction::Fuzzy { rs, rt, rd },
        }
    }
}

/// Errors raised while building or assembling an ezpim program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EzError {
    /// Ran out of mask-save registers for the requested nesting depth,
    /// reported at build time (the offending construct's body closure is
    /// skipped, so no partially predicated program can escape).
    MaskPoolExhausted {
        /// Nesting depth of the construct that could not be allocated
        /// (1 = outermost `if`/`while`).
        depth: usize,
    },
    /// `call` names a subroutine that was never defined.
    UnknownSubroutine(String),
    /// A multi-step instruction aliases its destination with a source.
    RegisterAliasing {
        /// The offending mnemonic.
        mnemonic: &'static str,
    },
    /// The assembled program failed ISA validation (builder bug guard).
    Invalid(String),
    /// A subroutine was defined twice.
    DuplicateSubroutine(String),
}

impl fmt::Display for EzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EzError::MaskPoolExhausted { depth } => {
                write!(f, "mask register pool exhausted at nesting depth {depth}")
            }
            EzError::UnknownSubroutine(name) => write!(f, "unknown subroutine `{name}`"),
            EzError::RegisterAliasing { mnemonic } => {
                write!(f, "{mnemonic}: destination register aliases a source")
            }
            EzError::Invalid(m) => write!(f, "assembled program invalid: {m}"),
            EzError::DuplicateSubroutine(name) => {
                write!(f, "subroutine `{name}` defined twice")
            }
        }
    }
}

impl std::error::Error for EzError {}

/// One item of a block; local jump targets are resolved at assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Item {
    Instr(Instruction),
    /// `JUMP_COND` to a block-local index.
    JumpCondLocal(usize),
    /// `JUMP` to a named subroutine.
    Call(String),
}

/// A structured MPU program under construction.
///
/// # Example
///
/// ```
/// use ezpim::{Cond, EzProgram};
/// use mpu_isa::RegId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ez = EzProgram::new();
/// ez.ensemble(&[(0, 0)], |b| {
///     // while (r0 > r1) { r0 -= r2; }
///     b.while_loop(Cond::Gt(RegId(0), RegId(1)), |b| {
///         b.sub(RegId(0), RegId(2), RegId(0));
///     });
/// })?;
/// let program = ez.assemble()?;
/// assert!(program.len() > 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EzProgram {
    main: Vec<Item>,
    subroutines: Vec<(String, Vec<Item>)>,
    mask_pool: Vec<RegId>,
    statements: usize,
    dynamic_loops: usize,
}

impl Default for EzProgram {
    fn default() -> Self {
        Self::new()
    }
}

impl EzProgram {
    /// Creates a program with the default mask-register pool
    /// (`r13..r10`, supporting two nesting levels).
    pub fn new() -> Self {
        Self::with_mask_pool(vec![RegId(13), RegId(12), RegId(11), RegId(10)])
    }

    /// Creates a program with an explicit mask-save register pool. Each
    /// `if`/`while` nesting level consumes two registers from the pool for
    /// the duration of the construct.
    pub fn with_mask_pool(mask_pool: Vec<RegId>) -> Self {
        Self {
            main: Vec::new(),
            subroutines: Vec::new(),
            mask_pool,
            statements: 0,
            dynamic_loops: 0,
        }
    }

    /// Number of high-level statements written so far (the "ezpim lines of
    /// code" metric of Table IV).
    pub fn statements(&self) -> usize {
        self.statements
    }

    /// Number of hardware dynamic loops (`while`/`for`) written so far.
    /// Their trip counts are data-dependent — statically unbounded — so a
    /// host admitting foreign programs uses this count for loop-bound
    /// ceilings (reject, or arm
    /// `mastodon::RecoveryPolicy::watchdog_instructions` at run time).
    /// Statically unrolled [`Body::repeat`] bodies are not counted.
    pub fn dynamic_loops(&self) -> usize {
        self.dynamic_loops
    }

    /// Opens a compute ensemble over `(rfh, vrf)` members and builds its
    /// body.
    ///
    /// # Errors
    ///
    /// Propagates body-construction errors (mask pool exhaustion,
    /// aliasing).
    pub fn ensemble(
        &mut self,
        members: &[(u16, u16)],
        f: impl FnOnce(&mut Body<'_>),
    ) -> Result<&mut Self, EzError> {
        self.statements += 1;
        for &(rfh, vrf) in members {
            self.main.push(Item::Instr(Instruction::Compute { rfh: RfhId(rfh), vrf: VrfId(vrf) }));
        }
        let mut pool = std::mem::take(&mut self.mask_pool);
        let mut body = Body {
            items: &mut self.main,
            pool: &mut pool,
            depth: 0,
            statements: &mut self.statements,
            dynamic_loops: &mut self.dynamic_loops,
            error: None,
        };
        f(&mut body);
        let error = body.error.take();
        self.mask_pool = pool;
        if let Some(e) = error {
            return Err(e);
        }
        self.main.push(Item::Instr(Instruction::ComputeDone));
        Ok(self)
    }

    /// Opens a transfer ensemble with `(src_rfh, dst_rfh)` pairs.
    pub fn transfer(
        &mut self,
        pairs: &[(u16, u16)],
        f: impl FnOnce(&mut Transfer<'_>),
    ) -> &mut Self {
        self.statements += 1;
        for &(src, dst) in pairs {
            self.main.push(Item::Instr(Instruction::Move { src: RfhId(src), dst: RfhId(dst) }));
        }
        let mut t = Transfer { items: &mut self.main, statements: &mut self.statements };
        f(&mut t);
        self.main.push(Item::Instr(Instruction::MoveDone));
        self
    }

    /// Opens a `SEND` block targeting MPU `dst`; the closure adds one or
    /// more move blocks.
    pub fn send(&mut self, dst: u16, f: impl FnOnce(&mut SendBlock<'_>)) -> &mut Self {
        self.statements += 1;
        self.main.push(Item::Instr(Instruction::Send { dst: MpuId(dst) }));
        let mut s = SendBlock { items: &mut self.main, statements: &mut self.statements };
        f(&mut s);
        self.main.push(Item::Instr(Instruction::SendDone));
        self
    }

    /// Emits `RECV` from MPU `src`.
    pub fn recv(&mut self, src: u16) -> &mut Self {
        self.statements += 1;
        self.main.push(Item::Instr(Instruction::Recv { src: MpuId(src) }));
        self
    }

    /// Emits `MPU_SYNC`.
    pub fn sync(&mut self) -> &mut Self {
        self.statements += 1;
        self.main.push(Item::Instr(Instruction::MpuSync));
        self
    }

    /// Defines a named subroutine (placed after `main`; reached only via
    /// [`Body::call`]).
    ///
    /// # Errors
    ///
    /// Fails on duplicate names or body-construction errors.
    pub fn subroutine(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Body<'_>),
    ) -> Result<&mut Self, EzError> {
        if self.subroutines.iter().any(|(n, _)| n == name) {
            return Err(EzError::DuplicateSubroutine(name.to_string()));
        }
        self.statements += 1;
        let mut items = Vec::new();
        let mut pool = std::mem::take(&mut self.mask_pool);
        let mut body = Body {
            items: &mut items,
            pool: &mut pool,
            depth: 0,
            statements: &mut self.statements,
            dynamic_loops: &mut self.dynamic_loops,
            error: None,
        };
        f(&mut body);
        let error = body.error.take();
        self.mask_pool = pool;
        if let Some(e) = error {
            return Err(e);
        }
        items.push(Item::Instr(Instruction::Return));
        self.subroutines.push((name.to_string(), items));
        Ok(self)
    }

    /// Assembles the structured program into a validated [`Program`]:
    /// `main`, a top-level `RETURN` halt, then the subroutine bodies,
    /// with all jump targets resolved.
    ///
    /// # Errors
    ///
    /// Fails on calls to unknown subroutines or (which would indicate an
    /// ezpim bug) ISA validation errors.
    pub fn assemble(&self) -> Result<Program, EzError> {
        // Layout: main at 0, halt, then each subroutine.
        let mut bases: HashMap<&str, usize> = HashMap::new();
        let mut cursor = self.main.len() + 1; // +1 for the halt RETURN
        for (name, items) in &self.subroutines {
            bases.insert(name.as_str(), cursor);
            cursor += items.len();
        }
        fn emit_block(
            out: &mut Vec<Instruction>,
            bases: &HashMap<&str, usize>,
            items: &[Item],
            base: usize,
        ) -> Result<(), EzError> {
            for item in items {
                let instr = match item {
                    Item::Instr(i) => *i,
                    Item::JumpCondLocal(local) => {
                        Instruction::JumpCond { target: LineNum((base + local) as u32) }
                    }
                    Item::Call(name) => {
                        let target = bases
                            .get(name.as_str())
                            .ok_or_else(|| EzError::UnknownSubroutine(name.clone()))?;
                        Instruction::Jump { target: LineNum(*target as u32) }
                    }
                };
                out.push(instr);
            }
            Ok(())
        }
        let mut out: Vec<Instruction> = Vec::with_capacity(cursor);
        emit_block(&mut out, &bases, &self.main, 0)?;
        out.push(Instruction::Return); // halt convention
        let mut base = self.main.len() + 1;
        for (_, items) in &self.subroutines {
            emit_block(&mut out, &bases, items, base)?;
            base += items.len();
        }
        let program = Program::from_instructions(out);
        program.validate().map_err(|e| EzError::Invalid(e.to_string()))?;
        Ok(program)
    }
}

/// Builder for compute-ensemble (or subroutine) bodies.
#[derive(Debug)]
pub struct Body<'a> {
    items: &'a mut Vec<Item>,
    pool: &'a mut Vec<RegId>,
    /// Current predication nesting depth, so pool exhaustion reports the
    /// depth of the construct that failed rather than the registers left.
    depth: usize,
    statements: &'a mut usize,
    dynamic_loops: &'a mut usize,
    error: Option<EzError>,
}

macro_rules! binary_methods {
    ($($(#[$meta:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$meta])*
            pub fn $name(&mut self, rs: RegId, rt: RegId, rd: RegId) -> &mut Self {
                self.op(Instruction::Binary { op: $op, rs, rt, rd })
            }
        )*
    };
}

macro_rules! unary_methods {
    ($($(#[$meta:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$meta])*
            pub fn $name(&mut self, rs: RegId, rd: RegId) -> &mut Self {
                self.op(Instruction::Unary { op: $op, rs, rd })
            }
        )*
    };
}

impl Body<'_> {
    fn fail(&mut self, e: EzError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Emits a raw instruction.
    pub fn op(&mut self, instr: Instruction) -> &mut Self {
        *self.statements += 1;
        // Eagerly reject the aliasing the recipes cannot implement.
        if let Instruction::Binary { op, rs, rt, rd } = instr {
            let multi_step = matches!(
                op,
                BinaryOp::Mul | BinaryOp::Mac | BinaryOp::QDiv | BinaryOp::QRDiv | BinaryOp::RDiv
            );
            if multi_step && (rd == rs || rd == rt) {
                self.fail(EzError::RegisterAliasing { mnemonic: op.mnemonic() });
                return self;
            }
        }
        self.items.push(Item::Instr(instr));
        self
    }

    binary_methods! {
        /// `rd = rs + rt`.
        add => BinaryOp::Add;
        /// `rd = rs - rt`.
        sub => BinaryOp::Sub;
        /// `rd = rs * rt` (8/16/32-bit inputs).
        mul => BinaryOp::Mul;
        /// `rd += rs * rt`.
        mac => BinaryOp::Mac;
        /// `rd = rs / rt` (quotient).
        qdiv => BinaryOp::QDiv;
        /// `rd = rs / rt`, remainder overwrites `rt`.
        qrdiv => BinaryOp::QRDiv;
        /// `rd = rs % rt`.
        rdiv => BinaryOp::RDiv;
        /// `rd = rs & rt`.
        and => BinaryOp::And;
        /// `rd = !(rs & rt)`.
        nand => BinaryOp::Nand;
        /// `rd = !(rs | rt)`.
        nor => BinaryOp::Nor;
        /// `rd = rs | rt`.
        or => BinaryOp::Or;
        /// `rd = rs ^ rt`.
        xor => BinaryOp::Xor;
        /// `rd = !(rs ^ rt)`.
        xnor => BinaryOp::Xnor;
        /// Bitwise select: `rd = (rd & rs) | (!rd & rt)`.
        mux => BinaryOp::Mux;
        /// `rd = max(rs, rt)` (unsigned).
        max => BinaryOp::Max;
        /// `rd = min(rs, rt)` (unsigned).
        min => BinaryOp::Min;
    }

    unary_methods! {
        /// `rd = rs + 1`.
        inc => UnaryOp::Inc;
        /// `rd = popcount(rs)`.
        popc => UnaryOp::Popc;
        /// `rd = max(rs, 0)` (two's complement).
        relu => UnaryOp::Relu;
        /// `rd = !rs`.
        inv => UnaryOp::Inv;
        /// `rd = reverse_bits(rs)`.
        bflip => UnaryOp::BFlip;
        /// `rd = rs << 1`.
        lshift => UnaryOp::LShift;
        /// `rd = rs`.
        mov => UnaryOp::Mov;
    }

    /// `rd = 0` in every lane.
    pub fn init0(&mut self, rd: RegId) -> &mut Self {
        self.op(Instruction::Init { value: InitValue::Zero, rd })
    }

    /// `rd = 1` in every lane.
    pub fn init1(&mut self, rd: RegId) -> &mut Self {
        self.op(Instruction::Init { value: InitValue::One, rd })
    }

    /// Per-lane sort: after this, `rs` holds the smaller and `rt` the
    /// larger value.
    pub fn cas(&mut self, rs: RegId, rt: RegId) -> &mut Self {
        self.op(Instruction::Cas { rs, rt })
    }

    /// Emits a bare comparison (conditional register result), for uses
    /// outside structured control flow.
    pub fn cmp(&mut self, cond: Cond) -> &mut Self {
        self.op(cond.instruction())
    }

    /// Calls a named subroutine (resolved at assembly).
    pub fn call(&mut self, name: &str) -> &mut Self {
        *self.statements += 1;
        self.items.push(Item::Call(name.to_string()));
        self
    }

    /// Inserts a pipeline bubble.
    pub fn nop(&mut self) -> &mut Self {
        self.op(Instruction::Nop)
    }

    fn alloc_mask_regs(&mut self) -> Option<(RegId, RegId)> {
        let ro = self.pool.pop();
        let rm = self.pool.pop();
        match (ro, rm) {
            (Some(ro), Some(rm)) => {
                self.depth += 1;
                Some((ro, rm))
            }
            (ro, _) => {
                if let Some(r) = ro {
                    self.pool.push(r);
                }
                self.fail(EzError::MaskPoolExhausted { depth: self.depth + 1 });
                None
            }
        }
    }

    fn release_mask_regs(&mut self, ro: RegId, rm: RegId) {
        self.depth -= 1;
        self.pool.push(rm);
        self.pool.push(ro);
    }

    /// Emits the nesting-safe mask intersection prologue (Fig. 7c):
    /// captures the enclosing mask in `ro`, evaluates `cond`, and sets
    /// the mask to `enclosing AND cond` (materialized in `rm`).
    fn begin_predicated(&mut self, cond: Cond, ro: RegId, rm: RegId) {
        self.items.push(Item::Instr(Instruction::GetMask { rd: ro }));
        self.items.push(Item::Instr(cond.instruction()));
        self.items.push(Item::Instr(Instruction::SetMask { rs: COND_REG }));
        self.items.push(Item::Instr(Instruction::GetMask { rd: rm }));
        self.items.push(Item::Instr(Instruction::Unmask));
        self.items.push(Item::Instr(Instruction::Binary {
            op: BinaryOp::And,
            rs: rm,
            rt: ro,
            rd: rm,
        }));
        self.items.push(Item::Instr(Instruction::SetMask { rs: rm }));
    }

    /// `if (cond) { then }` with per-lane predication; nests arbitrarily
    /// within the mask-register pool.
    pub fn if_then(&mut self, cond: Cond, then: impl FnOnce(&mut Body<'_>)) -> &mut Self {
        *self.statements += 1;
        let Some((ro, rm)) = self.alloc_mask_regs() else { return self };
        self.begin_predicated(cond, ro, rm);
        then(self);
        self.items.push(Item::Instr(Instruction::Unmask));
        self.items.push(Item::Instr(Instruction::SetMask { rs: ro }));
        self.release_mask_regs(ro, rm);
        self
    }

    /// `if (cond) { then } else { otherwise }` with per-lane predication.
    pub fn if_else(
        &mut self,
        cond: Cond,
        then: impl FnOnce(&mut Body<'_>),
        otherwise: impl FnOnce(&mut Body<'_>),
    ) -> &mut Self {
        *self.statements += 1;
        let Some((ro, rm)) = self.alloc_mask_regs() else { return self };
        self.begin_predicated(cond, ro, rm);
        then(self);
        // Else mask: since rm ⊆ ro, (ro XOR rm) = ro AND NOT rm.
        self.items.push(Item::Instr(Instruction::Unmask));
        self.items.push(Item::Instr(Instruction::Binary {
            op: BinaryOp::Xor,
            rs: rm,
            rt: ro,
            rd: rm,
        }));
        self.items.push(Item::Instr(Instruction::SetMask { rs: rm }));
        otherwise(self);
        self.items.push(Item::Instr(Instruction::Unmask));
        self.items.push(Item::Instr(Instruction::SetMask { rs: ro }));
        self.release_mask_regs(ro, rm);
        self
    }

    /// `while (cond) { body }` — a hardware dynamic loop: lanes leave as
    /// their condition fails, and the EFI exits when all lanes are done
    /// (Fig. 7a).
    pub fn while_loop(&mut self, cond: Cond, body: impl FnOnce(&mut Body<'_>)) -> &mut Self {
        *self.statements += 1;
        *self.dynamic_loops += 1;
        let Some((ro, rm)) = self.alloc_mask_regs() else { return self };
        self.items.push(Item::Instr(Instruction::GetMask { rd: ro }));
        let head = self.items.len();
        self.items.push(Item::Instr(cond.instruction()));
        self.items.push(Item::Instr(Instruction::SetMask { rs: COND_REG }));
        self.items.push(Item::Instr(Instruction::GetMask { rd: rm }));
        self.items.push(Item::Instr(Instruction::Unmask));
        self.items.push(Item::Instr(Instruction::Binary {
            op: BinaryOp::And,
            rs: rm,
            rt: ro,
            rd: rm,
        }));
        self.items.push(Item::Instr(Instruction::SetMask { rs: rm }));
        body(self);
        self.items.push(Item::JumpCondLocal(head));
        self.items.push(Item::Instr(Instruction::Unmask));
        self.items.push(Item::Instr(Instruction::SetMask { rs: ro }));
        self.release_mask_regs(ro, rm);
        self
    }

    /// `for (counter = 0; counter < limit; counter++) { body }` — a
    /// dynamic counted loop using a counter and limit register.
    pub fn for_loop(
        &mut self,
        counter: RegId,
        limit: RegId,
        body: impl FnOnce(&mut Body<'_>),
    ) -> &mut Self {
        *self.statements += 1;
        self.init0(counter);
        self.while_loop(Cond::Lt(counter, limit), |b| {
            body(b);
            b.inc(counter, counter);
        })
    }

    /// Statically unrolled repetition (`n` copies of the body; no loop
    /// hardware involved).
    pub fn repeat(&mut self, n: usize, mut body: impl FnMut(&mut Body<'_>)) -> &mut Self {
        *self.statements += 1;
        for _ in 0..n {
            body(self);
        }
        self
    }
}

/// Builder for transfer-ensemble bodies.
#[derive(Debug)]
pub struct Transfer<'a> {
    items: &'a mut Vec<Item>,
    statements: &'a mut usize,
}

impl Transfer<'_> {
    /// Copies register `rs` of `src_vrf` to register `rd` of `dst_vrf`,
    /// for every RFH pair of the block.
    pub fn memcpy(&mut self, src_vrf: u16, rs: RegId, dst_vrf: u16, rd: RegId) -> &mut Self {
        *self.statements += 1;
        self.items.push(Item::Instr(Instruction::Memcpy {
            src_vrf: VrfId(src_vrf),
            rs,
            dst_vrf: VrfId(dst_vrf),
            rd,
        }));
        self
    }
}

/// Builder for `SEND` blocks (one or more move blocks).
#[derive(Debug)]
pub struct SendBlock<'a> {
    items: &'a mut Vec<Item>,
    statements: &'a mut usize,
}

impl SendBlock<'_> {
    /// Adds a move block with `(local_src_rfh, remote_dst_rfh)` pairs.
    pub fn transfer(
        &mut self,
        pairs: &[(u16, u16)],
        f: impl FnOnce(&mut Transfer<'_>),
    ) -> &mut Self {
        *self.statements += 1;
        for &(src, dst) in pairs {
            self.items.push(Item::Instr(Instruction::Move { src: RfhId(src), dst: RfhId(dst) }));
        }
        let mut t = Transfer { items: self.items, statements: self.statements };
        f(&mut t);
        self.items.push(Item::Instr(Instruction::MoveDone));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> RegId {
        RegId(i)
    }

    #[test]
    fn straight_line_ensemble_assembles() {
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0), (1, 0)], |b| {
            b.add(r(0), r(1), r(2)).sub(r(2), r(1), r(3));
        })
        .unwrap();
        let p = ez.assemble().unwrap();
        assert_eq!(p.len(), 2 + 2 + 1 + 1); // headers + body + footer + halt
        assert_eq!(p[0], Instruction::Compute { rfh: RfhId(0), vrf: VrfId(0) });
        assert_eq!(p[4], Instruction::ComputeDone);
        assert_eq!(p[5], Instruction::Return);
    }

    #[test]
    fn while_loop_lowered_like_fig7a() {
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.while_loop(Cond::Gt(r(0), r(1)), |b| {
                b.sub(r(0), r(2), r(0));
            });
        })
        .unwrap();
        let p = ez.assemble().unwrap();
        let text = p.to_string();
        assert!(text.contains("CMPGT"));
        assert!(text.contains("SETMASK r63"), "loads conditional register: {text}");
        assert!(text.contains("JUMP_COND"));
        assert!(text.contains("UNMASK"));
        // The JUMP_COND targets the comparison at the loop head.
        let jump = p
            .iter()
            .find_map(|i| match i {
                Instruction::JumpCond { target } => Some(target.index()),
                _ => None,
            })
            .unwrap();
        assert!(matches!(p[jump], Instruction::Compare { op: CompareOp::Gt, .. }));
    }

    #[test]
    fn if_else_uses_mask_arithmetic() {
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.if_else(
                Cond::Eq(r(0), r(1)),
                |b| {
                    b.add(r(0), r(1), r(2));
                },
                |b| {
                    b.sub(r(0), r(1), r(2));
                },
            );
        })
        .unwrap();
        let p = ez.assemble().unwrap();
        let text = p.to_string();
        assert!(text.contains("GETMASK"));
        assert!(text.contains("XOR"), "else mask from XOR: {text}");
        assert!(text.matches("SETMASK").count() >= 3);
    }

    #[test]
    fn nesting_allocates_distinct_mask_registers() {
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.if_then(Cond::Gt(r(0), r(1)), |b| {
                b.if_then(Cond::Lt(r(2), r(3)), |b| {
                    b.add(r(0), r(1), r(4));
                });
            });
        })
        .unwrap();
        let p = ez.assemble().unwrap();
        // Outer level uses r13/r12, inner r11/r10.
        let getmasks: Vec<_> = p
            .iter()
            .filter_map(|i| match i {
                Instruction::GetMask { rd } => Some(rd.0),
                _ => None,
            })
            .collect();
        assert!(getmasks.contains(&13));
        assert!(getmasks.contains(&11));
    }

    #[test]
    fn pool_exhaustion_is_reported() {
        let mut ez = EzProgram::with_mask_pool(vec![RegId(13), RegId(12)]);
        let err = ez
            .ensemble(&[(0, 0)], |b| {
                b.if_then(Cond::Gt(r(0), r(1)), |b| {
                    b.if_then(Cond::Lt(r(2), r(3)), |b| {
                        b.nop();
                    });
                });
            })
            .unwrap_err();
        // The inner `if` is the second nesting level: the error must name
        // the nesting depth of the construct that failed to allocate.
        assert_eq!(err, EzError::MaskPoolExhausted { depth: 2 });
    }

    #[test]
    fn pool_exhaustion_depth_counts_nesting_not_leftover_registers() {
        // Four-register pool (two levels): a depth-3 chain fails at 3,
        // even though sibling constructs before it allocated and released.
        let mut ez = EzProgram::new();
        let err = ez
            .ensemble(&[(0, 0)], |b| {
                b.if_then(Cond::Gt(r(0), r(1)), |b| {
                    b.nop();
                });
                b.if_then(Cond::Gt(r(0), r(1)), |b| {
                    b.if_then(Cond::Lt(r(2), r(3)), |b| {
                        b.if_then(Cond::Eq(r(4), r(5)), |b| {
                            b.nop();
                        });
                    });
                });
            })
            .unwrap_err();
        assert_eq!(err, EzError::MaskPoolExhausted { depth: 3 });
    }

    #[test]
    fn subroutine_call_resolves_and_returns() {
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.call("double");
        })
        .unwrap();
        ez.subroutine("double", |b| {
            b.add(r(0), r(0), r(1));
        })
        .unwrap();
        let p = ez.assemble().unwrap();
        // JUMP lands on the subroutine's first instruction; sub ends RETURN.
        let target = p
            .iter()
            .find_map(|i| match i {
                Instruction::Jump { target } => Some(target.index()),
                _ => None,
            })
            .unwrap();
        assert!(matches!(p[target], Instruction::Binary { op: BinaryOp::Add, .. }));
        assert_eq!(p[p.len() - 1], Instruction::Return);
    }

    #[test]
    fn unknown_subroutine_rejected_at_assembly() {
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.call("nope");
        })
        .unwrap();
        assert!(matches!(ez.assemble(), Err(EzError::UnknownSubroutine(_))));
    }

    #[test]
    fn duplicate_subroutine_rejected() {
        let mut ez = EzProgram::new();
        ez.subroutine("f", |b| {
            b.nop();
        })
        .unwrap();
        assert!(matches!(
            ez.subroutine("f", |b| {
                b.nop();
            }),
            Err(EzError::DuplicateSubroutine(_))
        ));
    }

    #[test]
    fn aliasing_multiply_rejected() {
        let mut ez = EzProgram::new();
        let err = ez
            .ensemble(&[(0, 0)], |b| {
                b.mul(r(0), r(1), r(0));
            })
            .unwrap_err();
        assert!(matches!(err, EzError::RegisterAliasing { mnemonic: "MUL" }));
    }

    #[test]
    fn dynamic_loop_count_sees_through_sugar() {
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.while_loop(Cond::Gt(r(0), r(1)), |b| {
                b.sub(r(0), r(2), r(0));
            });
            b.for_loop(r(3), r(4), |b| {
                b.add(r(5), r(2), r(5));
            });
            // Static unrolling is bounded by construction: not counted.
            b.repeat(4, |b| {
                b.add(r(6), r(2), r(6));
            });
        })
        .unwrap();
        assert_eq!(ez.dynamic_loops(), 2, "one while + one for (not the repeat)");

        let mut straight = EzProgram::new();
        straight
            .ensemble(&[(0, 0)], |b| {
                b.add(r(0), r(1), r(2));
            })
            .unwrap();
        assert_eq!(straight.dynamic_loops(), 0);
    }

    #[test]
    fn transfer_and_send_blocks() {
        let mut ez = EzProgram::new();
        ez.transfer(&[(0, 1)], |t| {
            t.memcpy(0, r(0), 0, r(1));
        });
        ez.send(3, |s| {
            s.transfer(&[(0, 2)], |t| {
                t.memcpy(0, r(0), 1, r(0));
            });
        });
        ez.recv(2);
        ez.sync();
        let p = ez.assemble().unwrap();
        let text = p.to_string();
        assert!(text.contains("MOVE h0 h1"));
        assert!(text.contains("SEND mpu3"));
        assert!(text.contains("RECV mpu2"));
        assert!(text.contains("MPU_SYNC"));
    }

    #[test]
    fn statement_count_tracks_high_level_lines() {
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.while_loop(Cond::Gt(r(0), r(1)), |b| {
                b.sub(r(0), r(2), r(0));
            });
        })
        .unwrap();
        let p = ez.assemble().unwrap();
        // The high-level program is far smaller than the lowered binary.
        assert!(ez.statements() < p.len());
        assert_eq!(ez.statements(), 3); // ensemble + while + sub
    }

    #[test]
    fn for_loop_counts_iterations() {
        // Functional behaviour is covered by the integration tests with the
        // simulator; here: structural sanity.
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.for_loop(r(5), r(6), |b| {
                b.add(r(0), r(1), r(0));
            });
        })
        .unwrap();
        let p = ez.assemble().unwrap();
        let text = p.to_string();
        assert!(text.contains("INIT0 r5"));
        assert!(text.contains("CMPLT r5 r6"));
        assert!(text.contains("INC r5 r5"));
    }

    #[test]
    fn repeat_unrolls_statically() {
        let mut ez = EzProgram::new();
        ez.ensemble(&[(0, 0)], |b| {
            b.repeat(4, |b| {
                b.inc(r(0), r(0));
            });
        })
        .unwrap();
        let p = ez.assemble().unwrap();
        let incs = p.iter().filter(|i| i.mnemonic() == "INC").count();
        assert_eq!(incs, 4);
        assert!(!p.to_string().contains("JUMP_COND"));
    }
}
