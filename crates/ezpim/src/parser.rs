//! The textual ezpim language.
//!
//! A small, line-oriented language with the control semantics the paper's
//! ezpim exposes. Statements inside bodies are either Table II assembly
//! lines (reusing the `mpu-isa` parser) or structured constructs:
//!
//! ```text
//! # options pricing stub
//! ensemble h0.v0 h1.v0 {
//!     init0 r4
//!     while r0 > r1 {
//!         sub r0 r2 r0
//!     }
//!     if r0 == r1 {
//!         add r0 r1 r2
//!     } else {
//!         sub r0 r1 r2
//!     }
//!     for r5 < r6 {
//!         add r0 r1 r0
//!     }
//!     call sqrt
//! }
//! move h0 -> h1 {
//!     memcpy v0.r0 -> v0.r1
//! }
//! send mpu3 {
//!     move h0 -> h2 {
//!         memcpy v0.r0 -> v1.r0
//!     }
//! }
//! recv mpu2
//! sync
//! sub sqrt {
//!     add r0 r0 r1
//! }
//! ```
//!
//! Conditions are `rA == rB`, `rA > rB`, `rA < rB`, and
//! `rA ~= rB skip rC` (fuzzy). `for rC < rL` is the counted loop with
//! counter `rC` and limit `rL`.

use crate::builder::{Body, Cond, EzProgram};
use mpu_isa::{Instruction, RegId};
use std::fmt;

/// Error parsing ezpim source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// One-based source line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ezpim line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone)]
enum Stmt {
    Instr(Instruction),
    While(Cond, Vec<Stmt>),
    For(RegId, RegId, Vec<Stmt>),
    If(Cond, Vec<Stmt>, Option<Vec<Stmt>>),
    Call(String),
}

#[derive(Debug, Clone)]
struct MemcpyLine {
    src_vrf: u16,
    rs: RegId,
    dst_vrf: u16,
    rd: RegId,
}

/// One move block inside a `send` construct: RFH pairs + memcpy lines.
type SendMoveBlock = (Vec<(u16, u16)>, Vec<MemcpyLine>);

#[derive(Debug, Clone)]
enum Top {
    Ensemble(Vec<(u16, u16)>, Vec<Stmt>),
    Move(Vec<(u16, u16)>, Vec<MemcpyLine>),
    Send(u16, Vec<SendMoveBlock>),
    Recv(u16),
    Sync,
    Sub(String, Vec<Stmt>),
}

struct Lines<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .filter_map(|(i, raw)| {
                let body = raw.split('#').next().unwrap_or("").trim();
                if body.is_empty() {
                    None
                } else {
                    Some((i + 1, body))
                }
            })
            .collect();
        Self { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let item = self.peek();
        if item.is_some() {
            self.pos += 1;
        }
        item
    }

    /// Line number of the last content line — where "unexpected end of
    /// input" errors point (instead of a meaningless line 0).
    fn last_line(&self) -> usize {
        self.lines.last().map_or(0, |(ln, _)| *ln)
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_reg(line: usize, tok: &str) -> Result<RegId, ParseError> {
    let digits = tok
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register like `r0`, found `{tok}`")))?;
    let index = digits.parse::<u16>().map_err(|_| {
        err(line, format!("register index in `{tok}` is not a number (expected `r0`..`r63`)"))
    })?;
    if index > RegId::MAX {
        return Err(err(line, format!("register `{tok}` out of range (r0..r{})", RegId::MAX)));
    }
    Ok(RegId(index))
}

fn parse_u16(line: usize, tok: &str, prefix: &str) -> Result<u16, ParseError> {
    let digits = tok
        .strip_prefix(prefix)
        .ok_or_else(|| err(line, format!("expected `{prefix}N`, found `{tok}`")))?;
    digits
        .parse::<u16>()
        .map_err(|_| err(line, format!("`{prefix}` index in `{tok}` is not a number")))
}

/// Parses `h0.v1` into an `(rfh, vrf)` pair.
fn parse_member(line: usize, tok: &str) -> Result<(u16, u16), ParseError> {
    let (h, v) =
        tok.split_once('.').ok_or_else(|| err(line, format!("expected `hN.vM`, found `{tok}`")))?;
    Ok((parse_u16(line, h, "h")?, parse_u16(line, v, "v")?))
}

/// Parses `v0.r1` into a `(vrf, reg)` pair.
fn parse_vrf_reg(line: usize, tok: &str) -> Result<(u16, RegId), ParseError> {
    let (v, r) =
        tok.split_once('.').ok_or_else(|| err(line, format!("expected `vN.rM`, found `{tok}`")))?;
    Ok((parse_u16(line, v, "v")?, parse_reg(line, r)?))
}

fn parse_cond(line: usize, toks: &[&str]) -> Result<Cond, ParseError> {
    match toks {
        [a, "==", b] => Ok(Cond::Eq(parse_reg(line, a)?, parse_reg(line, b)?)),
        [a, ">", b] => Ok(Cond::Gt(parse_reg(line, a)?, parse_reg(line, b)?)),
        [a, "<", b] => Ok(Cond::Lt(parse_reg(line, a)?, parse_reg(line, b)?)),
        [a, "~=", b, "skip", c] => {
            Ok(Cond::Fuzzy(parse_reg(line, a)?, parse_reg(line, b)?, parse_reg(line, c)?))
        }
        _ => Err(err(line, format!("unrecognized condition `{}`", toks.join(" ")))),
    }
}

/// Rejects multi-step instructions whose destination aliases a source at
/// the statement's own line — the builder would reject them anyway (see
/// [`crate::EzError::RegisterAliasing`]), but only with the enclosing
/// construct's location.
fn check_aliasing(line: usize, instr: &Instruction) -> Result<(), ParseError> {
    use mpu_isa::BinaryOp;
    if let Instruction::Binary { op, rs, rt, rd } = instr {
        let multi_step = matches!(
            op,
            BinaryOp::Mul | BinaryOp::Mac | BinaryOp::QDiv | BinaryOp::QRDiv | BinaryOp::RDiv
        );
        if multi_step && (rd == rs || rd == rt) {
            return Err(err(
                line,
                format!("{} destination r{} aliases a source register", instr.mnemonic(), rd.0),
            ));
        }
    }
    Ok(())
}

/// Parses statements until the matching `}`; returns `(stmts, saw_else)`.
fn parse_body(lines: &mut Lines<'_>) -> Result<(Vec<Stmt>, bool), ParseError> {
    let mut stmts = Vec::new();
    loop {
        let (ln, text) = lines
            .next()
            .ok_or_else(|| err(lines.last_line(), "unexpected end of input: missing `}`"))?;
        if text == "}" {
            return Ok((stmts, false));
        }
        if text == "} else {" {
            return Ok((stmts, true));
        }
        let toks: Vec<&str> = text.split_whitespace().collect();
        match toks.as_slice() {
            ["while", rest @ .., "{"] => {
                let cond = parse_cond(ln, rest)?;
                let (body, saw_else) = parse_body(lines)?;
                if saw_else {
                    return Err(err(ln, "`else` is not valid after `while`"));
                }
                stmts.push(Stmt::While(cond, body));
            }
            ["for", counter, "<", limit, "{"] => {
                let c = parse_reg(ln, counter)?;
                let l = parse_reg(ln, limit)?;
                let (body, saw_else) = parse_body(lines)?;
                if saw_else {
                    return Err(err(ln, "`else` is not valid after `for`"));
                }
                stmts.push(Stmt::For(c, l, body));
            }
            ["if", rest @ .., "{"] => {
                let cond = parse_cond(ln, rest)?;
                let (then, saw_else) = parse_body(lines)?;
                let otherwise = if saw_else {
                    let (els, nested_else) = parse_body(lines)?;
                    if nested_else {
                        return Err(err(ln, "dangling `else`"));
                    }
                    Some(els)
                } else {
                    None
                };
                stmts.push(Stmt::If(cond, then, otherwise));
            }
            ["call", name] => stmts.push(Stmt::Call(name.to_string())),
            _ => {
                let instr: Instruction = text.parse().map_err(|m: String| err(ln, m))?;
                check_aliasing(ln, &instr)?;
                stmts.push(Stmt::Instr(instr));
            }
        }
    }
}

/// Parses `memcpy vA.rB -> vC.rD` lines until `}`.
fn parse_move_body(lines: &mut Lines<'_>) -> Result<Vec<MemcpyLine>, ParseError> {
    let mut copies = Vec::new();
    loop {
        let (ln, text) = lines
            .next()
            .ok_or_else(|| err(lines.last_line(), "unexpected end of input in move block"))?;
        if text == "}" {
            return Ok(copies);
        }
        let toks: Vec<&str> = text.split_whitespace().collect();
        match toks.as_slice() {
            ["memcpy", src, "->", dst] => {
                let (src_vrf, rs) = parse_vrf_reg(ln, src)?;
                let (dst_vrf, rd) = parse_vrf_reg(ln, dst)?;
                copies.push(MemcpyLine { src_vrf, rs, dst_vrf, rd });
            }
            _ => return Err(err(ln, format!("expected `memcpy vN.rM -> vN.rM`, got `{text}`"))),
        }
    }
}

fn parse_move_header(line: usize, toks: &[&str]) -> Result<Vec<(u16, u16)>, ParseError> {
    // move h0 -> h1 [, h2 -> h3 ...] {
    let inner = &toks[1..toks.len() - 1]; // strip `move` and `{`
    let mut pairs = Vec::new();
    for chunk in inner.split(|t| *t == ",") {
        match chunk {
            [src, "->", dst] => {
                pairs.push((parse_u16(line, src, "h")?, parse_u16(line, dst, "h")?))
            }
            _ => return Err(err(line, "expected `move hA -> hB { ... }`")),
        }
    }
    if pairs.is_empty() {
        return Err(err(line, "move block needs at least one RFH pair"));
    }
    Ok(pairs)
}

fn parse_top(lines: &mut Lines<'_>) -> Result<Vec<(usize, Top)>, ParseError> {
    let mut tops: Vec<(usize, Top)> = Vec::new();
    while let Some((ln, text)) = lines.next() {
        let toks: Vec<&str> = text.split_whitespace().collect();
        match toks.as_slice() {
            ["ensemble", members @ .., "{"] => {
                let members = members
                    .iter()
                    .map(|m| parse_member(ln, m.trim_end_matches(',')))
                    .collect::<Result<Vec<_>, _>>()?;
                if members.is_empty() {
                    return Err(err(ln, "ensemble needs at least one hN.vM member"));
                }
                let (body, saw_else) = parse_body(lines)?;
                if saw_else {
                    return Err(err(ln, "dangling `else`"));
                }
                tops.push((ln, Top::Ensemble(members, body)));
            }
            ["move", .., "{"] => {
                let pairs = parse_move_header(ln, &toks)?;
                let copies = parse_move_body(lines)?;
                tops.push((ln, Top::Move(pairs, copies)));
            }
            ["send", mpu, "{"] => {
                let dst = parse_u16(ln, mpu, "mpu")?;
                let mut moves = Vec::new();
                loop {
                    let (ln2, t2) = lines
                        .next()
                        .ok_or_else(|| err(ln, "unexpected end of input in send block"))?;
                    if t2 == "}" {
                        break;
                    }
                    let toks2: Vec<&str> = t2.split_whitespace().collect();
                    match toks2.as_slice() {
                        ["move", .., "{"] => {
                            let pairs = parse_move_header(ln2, &toks2)?;
                            let copies = parse_move_body(lines)?;
                            moves.push((pairs, copies));
                        }
                        _ => return Err(err(ln2, "send blocks contain only move blocks")),
                    }
                }
                tops.push((ln, Top::Send(dst, moves)));
            }
            ["recv", mpu] => tops.push((ln, Top::Recv(parse_u16(ln, mpu, "mpu")?))),
            ["sync"] => tops.push((ln, Top::Sync)),
            ["sub", name, "{"] => {
                let (body, saw_else) = parse_body(lines)?;
                if saw_else {
                    return Err(err(ln, "dangling `else`"));
                }
                tops.push((ln, Top::Sub(name.to_string(), body)));
            }
            _ => return Err(err(ln, format!("unrecognized top-level statement `{text}`"))),
        }
    }
    Ok(tops)
}

fn emit_stmts(b: &mut Body<'_>, stmts: &[Stmt]) {
    for stmt in stmts {
        match stmt {
            Stmt::Instr(i) => {
                b.op(*i);
            }
            Stmt::While(cond, body) => {
                b.while_loop(*cond, |b| emit_stmts(b, body));
            }
            Stmt::For(counter, limit, body) => {
                b.for_loop(*counter, *limit, |b| emit_stmts(b, body));
            }
            Stmt::If(cond, then, None) => {
                b.if_then(*cond, |b| emit_stmts(b, then));
            }
            Stmt::If(cond, then, Some(els)) => {
                b.if_else(*cond, |b| emit_stmts(b, then), |b| emit_stmts(b, els));
            }
            Stmt::Call(name) => {
                b.call(name);
            }
        }
    }
}

/// Parses ezpim source text into an [`EzProgram`] (call
/// [`EzProgram::assemble`] for the binary).
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformed line, or a
/// wrapped [`EzError`] from lowering (e.g. mask-pool exhaustion).
pub fn parse(text: &str) -> Result<EzProgram, ParseError> {
    let mut lines = Lines::new(text);
    let tops = parse_top(&mut lines)?;
    let mut ez = EzProgram::new();
    for (ln, top) in &tops {
        match top {
            Top::Ensemble(members, body) => {
                ez.ensemble(members, |b| emit_stmts(b, body))
                    .map_err(|e| err(*ln, e.to_string()))?;
            }
            Top::Move(pairs, copies) => {
                ez.transfer(pairs, |t| {
                    for c in copies {
                        t.memcpy(c.src_vrf, c.rs, c.dst_vrf, c.rd);
                    }
                });
            }
            Top::Send(dst, moves) => {
                ez.send(*dst, |s| {
                    for (pairs, copies) in moves {
                        s.transfer(pairs, |t| {
                            for c in copies {
                                t.memcpy(c.src_vrf, c.rs, c.dst_vrf, c.rd);
                            }
                        });
                    }
                });
            }
            Top::Recv(src) => {
                ez.recv(*src);
            }
            Top::Sync => {
                ez.sync();
            }
            Top::Sub(name, body) => {
                ez.subroutine(name, |b| emit_stmts(b, body))
                    .map_err(|e| err(*ln, e.to_string()))?;
            }
        }
    }
    Ok(ez)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_language_example_parses_and_assembles() {
        let src = "\
# demo program
ensemble h0.v0 h1.v0 {
    INIT0 r4
    while r0 > r1 {
        SUB r0 r2 r0
    }
    if r0 == r1 {
        ADD r0 r1 r2
    } else {
        SUB r0 r1 r2
    }
    call sqrt
}
move h0 -> h1 {
    memcpy v0.r0 -> v0.r1
}
send mpu3 {
    move h0 -> h2 {
        memcpy v0.r0 -> v1.r0
    }
}
recv mpu2
sync
sub sqrt {
    ADD r0 r0 r1
}
";
        let ez = parse(src).expect("parse");
        let program = ez.assemble().expect("assemble");
        let text = program.to_string();
        assert!(text.contains("JUMP_COND"));
        assert!(text.contains("SEND mpu3"));
        assert!(text.contains("RECV mpu2"));
        assert!(program.len() > 20);
        // The ezpim source is dramatically shorter than the binary — the
        // Table IV effect.
        assert!(src.lines().count() < program.len());
    }

    #[test]
    fn for_loop_syntax() {
        let ez = parse("ensemble h0.v0 {\n for r5 < r6 {\n INC r0 r0\n }\n}").unwrap();
        let p = ez.assemble().unwrap();
        assert!(p.to_string().contains("CMPLT r5 r6"));
    }

    #[test]
    fn fuzzy_condition_syntax() {
        let ez = parse("ensemble h0.v0 {\n if r0 ~= r1 skip r2 {\n NOP\n }\n}").unwrap();
        let p = ez.assemble().unwrap();
        assert!(p.to_string().contains("FUZZY r0 r1 r2"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ensemble h0.v0 {\n BOGUS r1\n}").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("frobnicate").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn missing_brace_reported() {
        let e = parse("ensemble h0.v0 {\n NOP\n").unwrap_err();
        assert!(e.message.contains("missing `}`"));
    }

    #[test]
    fn while_with_else_rejected() {
        let e =
            parse("ensemble h0.v0 {\n while r0 > r1 {\n NOP\n } else {\n NOP\n }\n}").unwrap_err();
        assert!(e.message.contains("not valid after `while`"));
    }

    #[test]
    fn multi_pair_move() {
        let ez = parse("move h0 -> h1 , h2 -> h3 {\n memcpy v0.r0 -> v0.r0\n}").unwrap();
        let p = ez.assemble().unwrap();
        let text = p.to_string();
        assert!(text.contains("MOVE h0 h1"));
        assert!(text.contains("MOVE h2 h3"));
    }

    #[test]
    fn send_rejects_non_move_content() {
        let e = parse("send mpu1 {\n NOP\n}").unwrap_err();
        assert!(e.message.contains("only move blocks"));
    }

    #[test]
    fn register_token_errors_are_specific() {
        // Missing `r` prefix.
        let e = parse("ensemble h0.v0 {\n while x0 > r1 {\n NOP\n }\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected register"), "{}", e.message);
        // Non-numeric index.
        let e = parse("ensemble h0.v0 {\n if r0 == rX {\n NOP\n }\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("not a number"), "{}", e.message);
        // Out-of-range index.
        let e = parse("ensemble h0.v0 {\n if r64 == r0 {\n NOP\n }\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("out of range"), "{}", e.message);
    }

    #[test]
    fn member_token_errors_are_specific() {
        let e = parse("ensemble h0.q0 {\n NOP\n}").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expected `v"), "{}", e.message);
        let e = parse("ensemble hX.v0 {\n NOP\n}").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("not a number"), "{}", e.message);
        let e = parse("ensemble h0v0 {\n NOP\n}").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("hN.vM"), "{}", e.message);
    }

    #[test]
    fn mpu_token_errors_carry_lines() {
        let e = parse("sync\nrecv mpuX").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("not a number"), "{}", e.message);
        let e = parse("send pu3 {\n}").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expected `mpuN`"), "{}", e.message);
    }

    #[test]
    fn eof_errors_point_at_the_last_line() {
        let e = parse("ensemble h0.v0 {\n NOP\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("missing `}`"), "{}", e.message);
        let e = parse("move h0 -> h1 {\n memcpy v0.r0 -> v0.r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("move block"), "{}", e.message);
    }

    #[test]
    fn malformed_memcpy_reports_its_line() {
        let e = parse("move h0 -> h1 {\n memcpy v0.rX -> v0.r1\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("not a number"), "{}", e.message);
        let e = parse("move h0 -> h1 {\n memcpy v0.r0 v0.r1\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("memcpy"), "{}", e.message);
    }

    #[test]
    fn aliasing_reports_the_statement_line() {
        let e = parse("ensemble h0.v0 {\n NOP\n MUL r0 r1 r0\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("aliases"), "{}", e.message);
    }

    #[test]
    fn lowering_errors_carry_the_construct_line() {
        // Mask-pool exhaustion: three nested masked constructs exceed the
        // two-level pool; the error points at the ensemble header (the
        // construct whose lowering failed), not line 0.
        let src = "\
sync
ensemble h0.v0 {
    while r0 > r1 {
        while r2 > r3 {
            while r4 > r5 {
                NOP
            }
        }
    }
}
";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("mask register pool exhausted"), "{}", e.message);
    }
}
