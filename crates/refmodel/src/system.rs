//! Multi-MPU reference execution: the same deadlock-free rendezvous
//! scheduling loop as the simulator (MPUs stepped in ID order, blocked
//! `RECV`s re-stepped when new messages arrive), with messages delivered
//! instantly — NoC latency only affects timing, never architectural state.

use crate::machine::{RefError, RefMpu, RefStep, RefTrace};
use crate::RefGeometry;
use mpu_isa::Program;
use std::fmt;

/// A deadlock or per-MPU failure in a reference system run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefSystemError {
    /// One MPU's execution failed.
    Mpu {
        /// Which MPU failed.
        id: u16,
        /// The underlying error.
        error: RefError,
    },
    /// No MPU can make progress (all blocked on `RECV`).
    Deadlock {
        /// IDs of the blocked MPUs and the sender each is waiting on.
        waiting: Vec<(u16, u16)>,
    },
}

impl fmt::Display for RefSystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefSystemError::Mpu { id, error } => write!(f, "MPU {id}: {error}"),
            RefSystemError::Deadlock { waiting } => {
                write!(f, "deadlock: blocked RECVs {waiting:?}")
            }
        }
    }
}

impl std::error::Error for RefSystemError {}

/// A system of reference machines running coupled programs.
#[derive(Debug, Clone)]
pub struct RefSystem {
    mpus: Vec<RefMpu>,
    programs: Vec<Program>,
}

impl RefSystem {
    /// Creates a system of `count` reference MPUs.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the geometry's chip budget.
    pub fn new(geometry: RefGeometry, count: usize) -> Self {
        assert!(count > 0, "a system needs at least one MPU");
        assert!(
            count <= geometry.mpus_per_chip,
            "{count} MPUs exceed the chip budget of {}",
            geometry.mpus_per_chip
        );
        let mpus = (0..count).map(|i| RefMpu::new(geometry, i as u16)).collect();
        Self { mpus, programs: vec![Program::new(); count] }
    }

    /// Number of MPUs.
    pub fn len(&self) -> usize {
        self.mpus.len()
    }

    /// True if the system has no MPUs (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.mpus.is_empty()
    }

    /// Assigns the program MPU `id` will run.
    pub fn set_program(&mut self, id: usize, program: Program) {
        self.programs[id] = program;
    }

    /// Mutable access to one MPU (data setup / result readout).
    pub fn mpu_mut(&mut self, id: usize) -> &mut RefMpu {
        &mut self.mpus[id]
    }

    /// Sum of all per-MPU architectural counters (events concatenated in
    /// MPU-ID order).
    pub fn total_trace(&self) -> RefTrace {
        let mut total = RefTrace::default();
        for mpu in &self.mpus {
            total.absorb(mpu.trace());
        }
        total
    }

    /// Runs all programs to completion with the simulator's scheduling
    /// discipline: MPUs step in ID order, a `SEND` delivers immediately,
    /// and a round with no progress is a deadlock.
    ///
    /// # Errors
    ///
    /// Returns [`RefSystemError::Deadlock`] if every unfinished MPU is
    /// blocked on a `RECV` with no matching message in flight.
    pub fn run(&mut self) -> Result<(), RefSystemError> {
        let n = self.mpus.len();
        let mut done = vec![false; n];
        let mut blocked: Vec<Option<u16>> = vec![None; n];
        for mpu in &mut self.mpus {
            mpu.reset_pc();
        }
        loop {
            let mut progressed = false;
            for i in 0..n {
                if done[i] {
                    continue;
                }
                let event = self.mpus[i]
                    .step(&self.programs[i])
                    .map_err(|error| RefSystemError::Mpu { id: i as u16, error })?;
                match event {
                    RefStep::Completed => {
                        done[i] = true;
                        blocked[i] = None;
                        progressed = true;
                    }
                    RefStep::Sent(msg) => {
                        let dst = msg.dst as usize;
                        self.mpus[dst].deliver(*msg);
                        blocked[i] = None;
                        progressed = true;
                    }
                    RefStep::AwaitingRecv { src } => {
                        if blocked[i] != Some(src) {
                            progressed = true;
                        }
                        blocked[i] = Some(src);
                    }
                }
            }
            if done.iter().all(|&d| d) {
                return Ok(());
            }
            if !progressed {
                let waiting = (0..n)
                    .filter(|&i| !done[i])
                    .map(|i| (i as u16, blocked[i].unwrap_or(u16::MAX)))
                    .collect();
                return Err(RefSystemError::Deadlock { waiting });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RefGeometry;

    fn asm(text: &str) -> Program {
        Program::parse_asm(text).expect("valid asm")
    }

    #[test]
    fn point_to_point_message_delivers_data() {
        let mut sys = RefSystem::new(RefGeometry::racer(), 2);
        sys.set_program(0, asm("SEND mpu1\nMOVE h0 h2\nMEMCPY v0 r0 v1 r3\nMOVE_DONE\nSEND_DONE"));
        sys.set_program(1, asm("RECV mpu0"));
        sys.mpu_mut(0).write_register(0, 0, 0, &[123; 64]);
        sys.run().unwrap();
        assert_eq!(sys.mpu_mut(1).read_register(2, 1, 3)[0], 123);
        let total = sys.total_trace();
        assert_eq!(total.messages_sent, 1);
        assert_eq!(total.noc_bytes, 64 * 8);
    }

    #[test]
    fn exchange_with_lower_id_sending_first() {
        let mut sys = RefSystem::new(RefGeometry::racer(), 2);
        sys.set_program(
            0,
            asm("SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE\nRECV mpu1"),
        );
        sys.set_program(
            1,
            asm("RECV mpu0\nSEND mpu0\nMOVE h1 h1\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE"),
        );
        sys.mpu_mut(0).write_register(0, 0, 0, &[7; 64]);
        sys.mpu_mut(1).write_register(1, 0, 0, &[9; 64]);
        sys.run().unwrap();
        assert_eq!(sys.mpu_mut(1).read_register(0, 0, 0)[0], 7);
        assert_eq!(sys.mpu_mut(0).read_register(1, 0, 0)[0], 9);
    }

    #[test]
    fn deadlock_reports_complete_waiting_list() {
        let mut sys = RefSystem::new(RefGeometry::racer(), 3);
        sys.set_program(0, asm("RECV mpu1"));
        sys.set_program(1, asm("RECV mpu2"));
        sys.set_program(2, asm("RECV mpu0"));
        let err = sys.run().unwrap_err();
        assert_eq!(err, RefSystemError::Deadlock { waiting: vec![(0, 1), (1, 2), (2, 0)] });
    }

    #[test]
    fn receiver_computes_on_received_data() {
        let mut sys = RefSystem::new(RefGeometry::racer(), 2);
        sys.set_program(0, asm("SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE"));
        sys.set_program(1, asm("RECV mpu0\nCOMPUTE h0 v0\nINC r0 r1\nCOMPUTE_DONE"));
        sys.mpu_mut(0).write_register(0, 0, 0, &[41; 64]);
        sys.run().unwrap();
        assert_eq!(sys.mpu_mut(1).read_register(0, 0, 1)[0], 42);
    }
}
