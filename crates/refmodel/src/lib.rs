//! # refmodel — word-level golden model of the MPU ISA
//!
//! A direct interpreter for every Table-II instruction, executing on plain
//! `u64` lane values: no bit-planes, no micro-op recipes, no timing. It
//! shares the [`mpu_isa`] types with the simulator but deliberately depends
//! on nothing else, so it can serve as an independent semantic oracle for
//! differential testing of the bit-serial backends (RACER, MIMDRAM,
//! Duality Cache).
//!
//! What the model defines:
//!
//! * **Lane semantics** ([`semantics`]) — the architectural meaning of each
//!   arithmetic/logic/compare instruction on a single 64-bit lane, written
//!   from the ISA definition rather than from any recipe synthesizer.
//! * **Machine semantics** ([`RefMpu`]) — ensemble execution with
//!   thermal-wave replay, per-lane predication (mask/conditional planes),
//!   EFI loops, subroutine calls, transfer blocks, and `SEND`/`RECV`
//!   message passing, mirroring the architectural (not timed) behaviour of
//!   the simulator.
//! * **An architectural event trace** ([`RefTrace`]) — instructions
//!   retired, scheduler waves, messages and bytes sent, plus a list of
//!   coarse events (ensemble boundaries, transfers, communication), so
//!   perf refactors that silently change architectural counts show up as
//!   trace divergence.
//!
//! Deliberate non-goals: cycles and energy (timing model only lives in the
//! simulator) and the contents of the two reserved scratch registers
//! (`r14`/`r15` under the default 16-register geometry), which division
//! recipes clobber with implementation-defined values. Programs that read
//! the scratch registers after a division are outside the comparable
//! subset.
//!
//! # Example
//!
//! ```
//! use mpu_isa::Program;
//! use refmodel::{RefGeometry, RefMpu};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Program::parse_asm(
//!     "COMPUTE h0 v0\n\
//!      ADD r0 r1 r2\n\
//!      COMPUTE_DONE",
//! )?;
//! let mut mpu = RefMpu::new(RefGeometry::racer(), 0);
//! mpu.write_register(0, 0, 0, &[2; 64]);
//! mpu.write_register(0, 0, 1, &[40; 64]);
//! mpu.run(&program)?;
//! assert_eq!(mpu.read_register(0, 0, 2)[0], 42);
//! assert_eq!(mpu.trace().instructions, 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod machine;
pub mod semantics;
mod system;

pub use machine::{
    run_ref, LaneInit, RefError, RefEvent, RefMessage, RefMpu, RefStep, RefTrace, RefWrite,
    RETURN_STACK_DEPTH,
};
pub use system::{RefSystem, RefSystemError};

/// The architectural geometry the reference model interprets against.
///
/// Matches the simulator's Table-III datapath geometries but is defined
/// here independently so the oracle shares no code with the backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefGeometry {
    /// Vector lanes (elements) per VRF.
    pub lanes_per_vrf: usize,
    /// Data registers per VRF.
    pub regs_per_vrf: usize,
    /// VRFs per RF holder.
    pub vrfs_per_rfh: usize,
    /// RF holders per MPU.
    pub rfhs_per_mpu: usize,
    /// Thermal limit: VRFs of one RFH active in the same wave.
    pub active_vrfs_per_rfh: usize,
    /// Iso-area MPU budget per chip (bounds [`RefSystem`] size).
    pub mpus_per_chip: usize,
}

impl RefGeometry {
    /// RACER-like geometry (64 lanes, 1 active VRF per RFH).
    pub fn racer() -> Self {
        Self {
            lanes_per_vrf: 64,
            regs_per_vrf: 16,
            vrfs_per_rfh: 64,
            rfhs_per_mpu: 8,
            active_vrfs_per_rfh: 1,
            mpus_per_chip: 497,
        }
    }

    /// MIMDRAM-like geometry (512 lanes, 256 active VRFs per RFH).
    pub fn mimdram() -> Self {
        Self {
            lanes_per_vrf: 512,
            regs_per_vrf: 16,
            vrfs_per_rfh: 64,
            rfhs_per_mpu: 8,
            active_vrfs_per_rfh: 256,
            mpus_per_chip: 450,
        }
    }

    /// Duality-Cache-like geometry (256 lanes, 256 active VRFs per RFH).
    pub fn duality_cache() -> Self {
        Self {
            lanes_per_vrf: 256,
            regs_per_vrf: 16,
            vrfs_per_rfh: 64,
            rfhs_per_mpu: 8,
            active_vrfs_per_rfh: 256,
            mpus_per_chip: 12,
        }
    }

    /// The reserved scratch registers (clobbered by division recipes in
    /// the bit-serial backends): the two highest register indices.
    pub fn scratch_regs(&self) -> (u8, u8) {
        ((self.regs_per_vrf - 2) as u8, (self.regs_per_vrf - 1) as u8)
    }
}
