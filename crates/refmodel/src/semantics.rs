//! Architectural lane semantics of the arithmetic/logic/compare
//! instructions, written straight from the ISA definition (Table II).
//!
//! Everything here operates on one 64-bit lane value at a time. The
//! multiply/divide family takes narrow (32-bit) operands and produces
//! zero-extended results; everything else is full-width, unsigned,
//! two's-complement wrapping.

use mpu_isa::{BinaryOp, CompareOp, InitValue, UnaryOp};

/// Narrow multiply: the low 32 bits of each operand, full 64-bit product.
pub fn mul_narrow(rs: u64, rt: u64) -> u64 {
    u64::from(rs as u32) * u64::from(rt as u32)
}

/// Narrow division: `(quotient, remainder)` of the low 32 bits of each
/// operand, zero-extended. Division by zero returns an all-ones 32-bit
/// quotient and the dividend as remainder.
pub fn div_narrow(rs: u64, rt: u64) -> (u64, u64) {
    let (n, d) = (rs as u32, rt as u32);
    match (n.checked_div(d), n.checked_rem(d)) {
        (Some(q), Some(r)) => (u64::from(q), u64::from(r)),
        _ => (u64::from(u32::MAX), u64::from(n)),
    }
}

/// `rd = rs OP rt`. `MUX` selects per bit by the *old* destination value
/// and `MAC` accumulates into it, so both take `rd_old` as a third input.
///
/// `QRDIV` additionally writes the remainder back into `rt`; callers
/// handle that second write (see [`div_narrow`]).
pub fn binary(op: BinaryOp, rs: u64, rt: u64, rd_old: u64) -> u64 {
    match op {
        BinaryOp::Add => rs.wrapping_add(rt),
        BinaryOp::Sub => rs.wrapping_sub(rt),
        BinaryOp::Mul => mul_narrow(rs, rt),
        BinaryOp::Mac => rd_old.wrapping_add(mul_narrow(rs, rt)),
        BinaryOp::QDiv | BinaryOp::QRDiv => div_narrow(rs, rt).0,
        BinaryOp::RDiv => div_narrow(rs, rt).1,
        BinaryOp::And => rs & rt,
        BinaryOp::Nand => !(rs & rt),
        BinaryOp::Nor => !(rs | rt),
        BinaryOp::Or => rs | rt,
        BinaryOp::Xor => rs ^ rt,
        BinaryOp::Xnor => !(rs ^ rt),
        BinaryOp::Mux => (rs & rd_old) | (rt & !rd_old),
        BinaryOp::Max => {
            if rs >= rt {
                rs
            } else {
                rt
            }
        }
        BinaryOp::Min => {
            if rs <= rt {
                rs
            } else {
                rt
            }
        }
    }
}

/// `rd = OP rs`.
pub fn unary(op: UnaryOp, rs: u64) -> u64 {
    match op {
        UnaryOp::Inc => rs.wrapping_add(1),
        UnaryOp::Popc => u64::from(rs.count_ones()),
        UnaryOp::Relu => {
            if (rs as i64) < 0 {
                0
            } else {
                rs
            }
        }
        UnaryOp::Inv => !rs,
        UnaryOp::BFlip => rs.reverse_bits(),
        UnaryOp::LShift => rs << 1,
        UnaryOp::Mov => rs,
    }
}

/// Per-lane unsigned comparison → conditional-register bit.
pub fn compare(op: CompareOp, rs: u64, rt: u64) -> bool {
    match op {
        CompareOp::Eq => rs == rt,
        CompareOp::Gt => rs > rt,
        CompareOp::Lt => rs < rt,
    }
}

/// `FUZZY`: equality with the bit positions set in `rd` treated as
/// don't-care.
pub fn fuzzy(rs: u64, rt: u64, rd: u64) -> bool {
    (rs | rd) == (rt | rd)
}

/// `CAS` compare-and-swap sort: the `(rs, rt)` pair with the smaller
/// value first.
pub fn cas(rs: u64, rt: u64) -> (u64, u64) {
    if rs <= rt {
        (rs, rt)
    } else {
        (rt, rs)
    }
}

/// `INIT0` / `INIT1` immediate.
pub fn init(value: InitValue) -> u64 {
    match value {
        InitValue::Zero => 0,
        InitValue::One => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_multiply_uses_low_halves_only() {
        assert_eq!(mul_narrow(u64::MAX, 2), (u64::from(u32::MAX)) * 2);
        assert_eq!(mul_narrow(0x1_0000_0000, 7), 0);
        assert_eq!(mul_narrow(u32::MAX as u64, u32::MAX as u64), 0xffff_fffe_0000_0001);
    }

    #[test]
    fn division_by_zero_is_saturated() {
        assert_eq!(div_narrow(123, 0), (u64::from(u32::MAX), 123));
        assert_eq!(div_narrow(17, 5), (3, 2));
    }

    #[test]
    fn fuzzy_ignores_dont_care_bits() {
        assert!(fuzzy(0b1010, 0b1110, 0b0100));
        assert!(!fuzzy(0b1010, 0b1110, 0b0001));
        // Same truth table as ((rs ^ rt) & !rd) == 0.
        for rs in 0..8u64 {
            for rt in 0..8u64 {
                for rd in 0..8u64 {
                    assert_eq!(fuzzy(rs, rt, rd), (rs ^ rt) & !rd == 0);
                }
            }
        }
    }

    #[test]
    fn mux_selects_per_bit_by_old_destination() {
        assert_eq!(binary(mpu_isa::BinaryOp::Mux, 0xff00, 0x00ff, 0xf0f0), 0xf00f);
    }

    #[test]
    fn relu_uses_the_sign_bit() {
        assert_eq!(unary(mpu_isa::UnaryOp::Relu, 5), 5);
        assert_eq!(unary(mpu_isa::UnaryOp::Relu, 1 << 63), 0);
        assert_eq!(unary(mpu_isa::UnaryOp::Relu, u64::MAX), 0);
    }
}
