//! The single-MPU reference interpreter: architectural execution on plain
//! `u64` lanes, mirroring the simulator's instruction walk (ensemble
//! headers, thermal-wave replay, EFI control flow, transfer blocks,
//! `SEND`/`RECV` boundaries) with none of its timing.

use crate::semantics;
use crate::RefGeometry;
use mpu_isa::{Instruction, Program, COND_REG};
use std::collections::HashMap;
use std::fmt;

/// Depth of the control path's return-address stack (mirrors the
/// simulator's hardware limit; the two must stay in lockstep for the
/// differential suites to agree on overflow behavior).
pub const RETURN_STACK_DEPTH: usize = 64;

/// An architectural error raised by the reference interpreter. Mirrors the
/// simulator's error conditions one-to-one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefError {
    /// The program is structurally invalid (validator message).
    InvalidProgram(String),
    /// An RFH/VRF/register index exceeds the geometry.
    GeometryExceeded {
        /// Offending instruction index.
        line: usize,
        /// Description of the violation.
        what: String,
    },
    /// `RETURN` with an empty return-address stack inside an ensemble.
    ReturnUnderflow {
        /// Offending instruction index.
        line: usize,
    },
    /// `JUMP` overflowed the bounded return-address stack (mirrors the
    /// simulator's [`RETURN_STACK_DEPTH`] hardware limit).
    ReturnStackOverflow {
        /// Offending instruction index.
        line: usize,
    },
    /// A compute/body instruction reached outside any ensemble.
    StrayInstruction {
        /// Offending instruction index.
        line: usize,
        /// Mnemonic of the stray instruction.
        mnemonic: &'static str,
    },
    /// `SEND`/`RECV` executed on a lone machine outside a [`crate::RefSystem`].
    CommOutsideSystem {
        /// Offending instruction index.
        line: usize,
    },
    /// Execution ran off the end of the program.
    UnexpectedEnd {
        /// Index of the first missing instruction.
        line: usize,
    },
}

impl fmt::Display for RefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefError::InvalidProgram(m) => write!(f, "invalid program: {m}"),
            RefError::GeometryExceeded { line, what } => {
                write!(f, "line {line}: geometry exceeded: {what}")
            }
            RefError::ReturnUnderflow { line } => {
                write!(f, "line {line}: RETURN with empty return-address stack")
            }
            RefError::ReturnStackOverflow { line } => {
                write!(
                    f,
                    "line {line}: JUMP overflowed the {RETURN_STACK_DEPTH}-entry \
                     return-address stack"
                )
            }
            RefError::StrayInstruction { line, mnemonic } => {
                write!(f, "line {line}: {mnemonic} reached outside any ensemble")
            }
            RefError::CommOutsideSystem { line } => {
                write!(f, "line {line}: SEND/RECV requires a multi-MPU RefSystem")
            }
            RefError::UnexpectedEnd { line } => {
                write!(f, "line {line}: execution ran past the end of the program")
            }
        }
    }
}

impl std::error::Error for RefError {}

/// One register's worth of lanes shipped to another MPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefWrite {
    /// Destination RF holder.
    pub rfh: u16,
    /// Destination VRF within the holder.
    pub vrf: u16,
    /// Destination register.
    pub reg: u8,
    /// Element values, one per lane.
    pub values: Vec<u64>,
}

/// An inter-MPU message produced by a `SEND` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefMessage {
    /// Sender MPU id.
    pub src: u16,
    /// Receiver MPU id.
    pub dst: u16,
    /// Register payloads to apply at the receiver.
    pub writes: Vec<RefWrite>,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// Outcome of advancing the machine to its next communication boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum RefStep {
    /// The program ran to completion (or a top-level `RETURN` halt).
    Completed,
    /// A `SEND` block finished; deliver this message and step again.
    Sent(Box<RefMessage>),
    /// Blocked on `RECV` from the named MPU.
    AwaitingRecv {
        /// The expected sender.
        src: u16,
    },
}

/// A coarse architectural event recorded in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefEvent {
    /// A compute ensemble executed: its member VRFs and the number of
    /// thermal waves it was split into.
    Ensemble {
        /// `(rfh, vrf)` members in header order.
        members: Vec<(u16, u16)>,
        /// Scheduler waves the ensemble replayed over.
        waves: usize,
    },
    /// A local transfer block executed.
    Transfer {
        /// `(src_rfh, dst_rfh)` pairs in header order.
        pairs: Vec<(u16, u16)>,
        /// Number of `MEMCPY` instructions in the block.
        copies: usize,
    },
    /// A `SEND` block completed.
    Sent {
        /// Destination MPU.
        dst: u16,
        /// Payload bytes.
        bytes: u64,
    },
    /// A `RECV` consumed a message.
    Received {
        /// Source MPU.
        src: u16,
    },
    /// An `MPU_SYNC` fence retired.
    Sync,
    /// A top-level `RETURN` halted the machine.
    Halt,
}

/// Architectural execution trace: the counters a timing refactor must not
/// change, plus the coarse event list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefTrace {
    /// Instructions retired (body instructions count once per wave pass,
    /// matching the simulator's replay accounting).
    pub instructions: u64,
    /// Thermal scheduler waves formed across all ensembles.
    pub scheduler_waves: u64,
    /// `SEND` messages completed.
    pub messages_sent: u64,
    /// Total payload bytes across all sent messages.
    pub noc_bytes: u64,
    /// Coarse events in program order.
    pub events: Vec<RefEvent>,
}

impl RefTrace {
    /// Adds another trace's counters into this one (events append).
    pub fn absorb(&mut self, other: &RefTrace) {
        self.instructions += other.instructions;
        self.scheduler_waves += other.scheduler_waves;
        self.messages_sent += other.messages_sent;
        self.noc_bytes += other.noc_bytes;
        self.events.extend(other.events.iter().cloned());
    }
}

/// Word-level state of one VRF: registers, conditional bits, lane mask.
#[derive(Debug, Clone)]
struct RefVrf {
    regs: Vec<Vec<u64>>,
    cond: Vec<bool>,
    mask: Vec<bool>,
}

impl RefVrf {
    fn new(lanes: usize, regs: usize) -> Self {
        Self { regs: vec![vec![0; lanes]; regs], cond: vec![false; lanes], mask: vec![true; lanes] }
    }

    /// Host/transfer write: full overwrite of every lane (bypasses the
    /// mask), zero-filling lanes past the end of `values`.
    fn write_all_lanes(&mut self, reg: u8, values: &[u64]) {
        let lanes = self.mask.len();
        let dst = &mut self.regs[reg as usize];
        for (lane, slot) in dst.iter_mut().enumerate().take(lanes) {
            *slot = values.get(lane).copied().unwrap_or(0);
        }
    }
}

/// The word-level reference interpreter for one MPU.
#[derive(Debug, Clone)]
pub struct RefMpu {
    geometry: RefGeometry,
    id: u16,
    vrfs: HashMap<(u16, u16), RefVrf>,
    pc: usize,
    halted: bool,
    inbox: Vec<RefMessage>,
    trace: RefTrace,
}

impl RefMpu {
    /// Creates a reference machine with zeroed VRFs.
    pub fn new(geometry: RefGeometry, id: u16) -> Self {
        Self {
            geometry,
            id,
            vrfs: HashMap::new(),
            pc: 0,
            halted: false,
            inbox: Vec::new(),
            trace: RefTrace::default(),
        }
    }

    /// The geometry this machine interprets against.
    pub fn geometry(&self) -> &RefGeometry {
        &self.geometry
    }

    /// The architectural trace accumulated so far.
    pub fn trace(&self) -> &RefTrace {
        &self.trace
    }

    fn fetch(program: &Program, pc: usize) -> Result<Instruction, RefError> {
        program.get(pc).copied().ok_or(RefError::UnexpectedEnd { line: pc })
    }

    fn check_geometry(&self, line: usize, rfh: u16, vrf: u16) -> Result<(), RefError> {
        if (rfh as usize) >= self.geometry.rfhs_per_mpu {
            return Err(RefError::GeometryExceeded {
                line,
                what: format!("RFH {rfh} >= {}", self.geometry.rfhs_per_mpu),
            });
        }
        if (vrf as usize) >= self.geometry.vrfs_per_rfh {
            return Err(RefError::GeometryExceeded {
                line,
                what: format!("VRF {vrf} >= {}", self.geometry.vrfs_per_rfh),
            });
        }
        Ok(())
    }

    fn check_reg(&self, line: usize, reg: u16) -> Result<u8, RefError> {
        if (reg as usize) >= self.geometry.regs_per_vrf {
            return Err(RefError::GeometryExceeded {
                line,
                what: format!("register r{reg} >= {}", self.geometry.regs_per_vrf),
            });
        }
        Ok(reg as u8)
    }

    fn vrf_mut(&mut self, rfh: u16, vrf: u16) -> &mut RefVrf {
        let (lanes, regs) = (self.geometry.lanes_per_vrf, self.geometry.regs_per_vrf);
        self.vrfs.entry((rfh, vrf)).or_insert_with(|| RefVrf::new(lanes, regs))
    }

    /// Host/DMA path: loads element values into a register. Surplus values
    /// are ignored; missing tail lanes zero-fill.
    pub fn write_register(&mut self, rfh: u16, vrf: u16, reg: u8, values: &[u64]) {
        self.vrf_mut(rfh, vrf).write_all_lanes(reg, values);
    }

    /// Host/DMA path: reads a register back as one value per lane.
    pub fn read_register(&mut self, rfh: u16, vrf: u16, reg: u8) -> Vec<u64> {
        self.vrf_mut(rfh, vrf).regs[reg as usize].clone()
    }

    /// Rewinds the PC for a fresh run (VRF data is preserved).
    pub fn reset_pc(&mut self) {
        self.pc = 0;
        self.halted = false;
    }

    /// Queues an incoming message (applied when `RECV` executes).
    pub fn deliver(&mut self, message: RefMessage) {
        self.inbox.push(message);
    }

    /// Runs a complete communication-free program.
    ///
    /// # Errors
    ///
    /// Fails on invalid programs, geometry violations, or `SEND`/`RECV`
    /// (which need a [`crate::RefSystem`]).
    pub fn run(&mut self, program: &Program) -> Result<(), RefError> {
        self.reset_pc();
        match self.step(program)? {
            RefStep::Completed => Ok(()),
            RefStep::Sent(_) | RefStep::AwaitingRecv { .. } => {
                Err(RefError::CommOutsideSystem { line: self.pc })
            }
        }
    }

    /// Advances execution until completion or the next communication
    /// boundary.
    ///
    /// # Errors
    ///
    /// See [`RefError`].
    pub fn step(&mut self, program: &Program) -> Result<RefStep, RefError> {
        if self.pc == 0 && !self.halted {
            program.validate().map_err(|e| RefError::InvalidProgram(e.to_string()))?;
        }
        let len = program.len();
        while self.pc < len && !self.halted {
            let line = self.pc;
            match program[line] {
                Instruction::Compute { .. } => self.exec_compute_ensemble(program)?,
                Instruction::Move { .. } => self.exec_transfer_block(program, None)?,
                Instruction::MpuSync => {
                    self.trace.instructions += 1;
                    self.trace.events.push(RefEvent::Sync);
                    self.pc += 1;
                }
                Instruction::Send { dst } => {
                    let msg = self.exec_send_block(program, dst.0)?;
                    return Ok(RefStep::Sent(Box::new(msg)));
                }
                Instruction::Recv { src } => {
                    if let Some(pos) = self.inbox.iter().position(|m| m.src == src.0) {
                        let msg = self.inbox.remove(pos);
                        self.apply_message(&msg);
                        self.trace.instructions += 1;
                        self.trace.events.push(RefEvent::Received { src: src.0 });
                        self.pc += 1;
                    } else {
                        return Ok(RefStep::AwaitingRecv { src: src.0 });
                    }
                }
                Instruction::Return => {
                    self.halted = true;
                    self.trace.instructions += 1;
                    self.trace.events.push(RefEvent::Halt);
                }
                Instruction::Nop => {
                    self.trace.instructions += 1;
                    self.pc += 1;
                }
                ref other => {
                    return Err(RefError::StrayInstruction { line, mnemonic: other.mnemonic() });
                }
            }
        }
        Ok(RefStep::Completed)
    }

    // ----- compute ensembles ------------------------------------------

    fn exec_compute_ensemble(&mut self, program: &Program) -> Result<(), RefError> {
        let mut members: Vec<(u16, u16)> = Vec::new();
        while let Instruction::Compute { rfh, vrf } = Self::fetch(program, self.pc)? {
            self.check_geometry(self.pc, rfh.0, vrf.0)?;
            members.push((rfh.0, vrf.0));
            self.trace.instructions += 1;
            self.pc += 1;
        }
        let body_start = self.pc;

        let waves = form_waves(&members, self.geometry.active_vrfs_per_rfh);
        self.trace.scheduler_waves += waves.len() as u64;
        self.trace.events.push(RefEvent::Ensemble { members, waves: waves.len() });

        let mut end_pc = body_start;
        for wave in &waves {
            end_pc = self.run_body(program, body_start, wave)?;
        }
        if waves.is_empty() {
            end_pc = self.run_body(program, body_start, &[])?;
        }
        // Footer (COMPUTE_DONE retires once per ensemble, not per wave).
        self.trace.instructions += 1;
        self.pc = end_pc + 1;
        Ok(())
    }

    /// Interprets the ensemble body once for one wave; returns the index
    /// of the terminating `COMPUTE_DONE`.
    fn run_body(
        &mut self,
        program: &Program,
        body_start: usize,
        wave: &[(u16, u16)],
    ) -> Result<usize, RefError> {
        let mut pc = body_start;
        let mut return_stack: Vec<usize> = Vec::new();

        // A wave starts with every lane enabled.
        for &(rfh, vrf) in wave {
            self.vrf_mut(rfh, vrf).mask.fill(true);
        }

        loop {
            let line = pc;
            let instr = Self::fetch(program, line)?;
            match instr {
                Instruction::ComputeDone => {
                    // Leave predication clean for the next ensemble.
                    for &(rfh, vrf) in wave {
                        self.vrf_mut(rfh, vrf).mask.fill(true);
                    }
                    return Ok(line);
                }
                Instruction::Binary { .. }
                | Instruction::Unary { .. }
                | Instruction::Compare { .. }
                | Instruction::Fuzzy { .. }
                | Instruction::Cas { .. }
                | Instruction::Init { .. } => {
                    self.exec_compute_instr(line, &instr, wave)?;
                    self.trace.instructions += 1;
                    pc += 1;
                }
                Instruction::SetMask { rs } => {
                    let from_cond = rs == COND_REG;
                    let reg = if from_cond { 0 } else { self.check_reg(line, rs.0)? };
                    for &(rfh, vrf) in wave {
                        let v = self.vrf_mut(rfh, vrf);
                        for lane in 0..v.mask.len() {
                            v.mask[lane] = if from_cond {
                                v.cond[lane]
                            } else {
                                v.regs[reg as usize][lane] & 1 == 1
                            };
                        }
                    }
                    self.trace.instructions += 1;
                    pc += 1;
                }
                Instruction::GetMask { rd } => {
                    // Mask readout ignores predication: every lane's bit
                    // is written out.
                    let rd = self.check_reg(line, rd.0)?;
                    for &(rfh, vrf) in wave {
                        let v = self.vrf_mut(rfh, vrf);
                        for lane in 0..v.mask.len() {
                            v.regs[rd as usize][lane] = u64::from(v.mask[lane]);
                        }
                    }
                    self.trace.instructions += 1;
                    pc += 1;
                }
                Instruction::Unmask => {
                    for &(rfh, vrf) in wave {
                        self.vrf_mut(rfh, vrf).mask.fill(true);
                    }
                    self.trace.instructions += 1;
                    pc += 1;
                }
                Instruction::JumpCond { target } => {
                    // EFI: loop back while any lane of any wave VRF is
                    // still enabled.
                    let any_enabled = wave
                        .iter()
                        .any(|&(rfh, vrf)| self.vrf_mut(rfh, vrf).mask.iter().any(|&m| m));
                    self.trace.instructions += 1;
                    pc = if any_enabled { target.index() } else { pc + 1 };
                }
                Instruction::Jump { target } => {
                    self.trace.instructions += 1;
                    // Same bounded hardware stack as the simulator: a
                    // corrupted target re-executing JUMPs must trap.
                    if return_stack.len() >= RETURN_STACK_DEPTH {
                        return Err(RefError::ReturnStackOverflow { line });
                    }
                    return_stack.push(pc + 1);
                    pc = target.index();
                }
                Instruction::Return => {
                    self.trace.instructions += 1;
                    pc = return_stack.pop().ok_or(RefError::ReturnUnderflow { line })?;
                }
                Instruction::Nop => {
                    self.trace.instructions += 1;
                    pc += 1;
                }
                ref other => {
                    return Err(RefError::StrayInstruction { line, mnemonic: other.mnemonic() });
                }
            }
        }
    }

    /// Applies one compute instruction to every VRF of the wave, lane by
    /// lane under the mask.
    fn exec_compute_instr(
        &mut self,
        line: usize,
        instr: &Instruction,
        wave: &[(u16, u16)],
    ) -> Result<(), RefError> {
        // Validate register operands once (identically for every member).
        match *instr {
            Instruction::Binary { rs, rt, rd, .. } => {
                self.check_reg(line, rs.0)?;
                self.check_reg(line, rt.0)?;
                self.check_reg(line, rd.0)?;
            }
            Instruction::Unary { rs, rd, .. } => {
                self.check_reg(line, rs.0)?;
                self.check_reg(line, rd.0)?;
            }
            Instruction::Compare { rs, rt, .. } | Instruction::Cas { rs, rt } => {
                self.check_reg(line, rs.0)?;
                self.check_reg(line, rt.0)?;
            }
            Instruction::Fuzzy { rs, rt, rd } => {
                self.check_reg(line, rs.0)?;
                self.check_reg(line, rt.0)?;
                self.check_reg(line, rd.0)?;
            }
            Instruction::Init { rd, .. } => {
                self.check_reg(line, rd.0)?;
            }
            _ => unreachable!("exec_compute_instr only sees compute-class instructions"),
        }
        for &(rfh, vrf) in wave {
            let v = self.vrf_mut(rfh, vrf);
            let lanes = v.mask.len();
            for lane in 0..lanes {
                if !v.mask[lane] {
                    continue;
                }
                match *instr {
                    Instruction::Binary { op, rs, rt, rd } => {
                        let (rs, rt, rd) = (rs.index(), rt.index(), rd.index());
                        let (a, b) = (v.regs[rs][lane], v.regs[rt][lane]);
                        let old = v.regs[rd][lane];
                        v.regs[rd][lane] = semantics::binary(op, a, b, old);
                        if op == mpu_isa::BinaryOp::QRDiv {
                            v.regs[rt][lane] = semantics::div_narrow(a, b).1;
                        }
                    }
                    Instruction::Unary { op, rs, rd } => {
                        v.regs[rd.index()][lane] = semantics::unary(op, v.regs[rs.index()][lane]);
                    }
                    Instruction::Compare { op, rs, rt } => {
                        v.cond[lane] = semantics::compare(
                            op,
                            v.regs[rs.index()][lane],
                            v.regs[rt.index()][lane],
                        );
                    }
                    Instruction::Fuzzy { rs, rt, rd } => {
                        v.cond[lane] = semantics::fuzzy(
                            v.regs[rs.index()][lane],
                            v.regs[rt.index()][lane],
                            v.regs[rd.index()][lane],
                        );
                    }
                    Instruction::Cas { rs, rt } => {
                        let (lo, hi) =
                            semantics::cas(v.regs[rs.index()][lane], v.regs[rt.index()][lane]);
                        v.regs[rs.index()][lane] = lo;
                        v.regs[rt.index()][lane] = hi;
                    }
                    Instruction::Init { value, rd } => {
                        v.regs[rd.index()][lane] = semantics::init(value);
                    }
                    _ => unreachable!(),
                }
            }
        }
        Ok(())
    }

    // ----- transfer and communication ---------------------------------

    /// Executes a move block. With `message` set the block belongs to a
    /// `SEND` and the copies become remote writes instead of local ones.
    fn exec_transfer_block(
        &mut self,
        program: &Program,
        mut message: Option<&mut RefMessage>,
    ) -> Result<(), RefError> {
        let mut pairs: Vec<(u16, u16)> = Vec::new();
        while let Instruction::Move { src, dst } = Self::fetch(program, self.pc)? {
            pairs.push((src.0, dst.0));
            self.trace.instructions += 1;
            self.pc += 1;
        }
        let words = self.geometry.lanes_per_vrf as u64;
        let mut copies = 0usize;
        loop {
            match Self::fetch(program, self.pc)? {
                Instruction::MoveDone => {
                    self.trace.instructions += 1;
                    self.pc += 1;
                    if message.is_none() {
                        self.trace.events.push(RefEvent::Transfer { pairs, copies });
                    }
                    return Ok(());
                }
                Instruction::Memcpy { src_vrf, rs, dst_vrf, rd } => {
                    let line = self.pc;
                    let rs = self.check_reg(line, rs.0)?;
                    let rd = self.check_reg(line, rd.0)?;
                    for &(src_rfh, dst_rfh) in &pairs {
                        self.check_geometry(line, src_rfh, src_vrf.0)?;
                        let values = self.vrf_mut(src_rfh, src_vrf.0).regs[rs as usize].clone();
                        match message.as_deref_mut() {
                            Some(msg) => {
                                msg.writes.push(RefWrite {
                                    rfh: dst_rfh,
                                    vrf: dst_vrf.0,
                                    reg: rd,
                                    values,
                                });
                                msg.bytes += words * 8;
                            }
                            None => {
                                self.check_geometry(line, dst_rfh, dst_vrf.0)?;
                                self.vrf_mut(dst_rfh, dst_vrf.0).write_all_lanes(rd, &values);
                            }
                        }
                    }
                    copies += 1;
                    self.trace.instructions += 1;
                    self.pc += 1;
                }
                ref other => {
                    return Err(RefError::StrayInstruction {
                        line: self.pc,
                        mnemonic: other.mnemonic(),
                    });
                }
            }
        }
    }

    fn exec_send_block(&mut self, program: &Program, dst: u16) -> Result<RefMessage, RefError> {
        self.trace.instructions += 1;
        self.pc += 1; // past SEND
        let mut msg = RefMessage { src: self.id, dst, writes: Vec::new(), bytes: 0 };
        while !matches!(Self::fetch(program, self.pc)?, Instruction::SendDone) {
            match Self::fetch(program, self.pc)? {
                Instruction::Move { .. } => self.exec_transfer_block(program, Some(&mut msg))?,
                ref other => {
                    return Err(RefError::StrayInstruction {
                        line: self.pc,
                        mnemonic: other.mnemonic(),
                    });
                }
            }
        }
        // SEND_DONE.
        self.trace.instructions += 1;
        self.pc += 1;
        self.trace.messages_sent += 1;
        self.trace.noc_bytes += msg.bytes;
        self.trace.events.push(RefEvent::Sent { dst, bytes: msg.bytes });
        Ok(msg)
    }

    fn apply_message(&mut self, msg: &RefMessage) {
        for w in &msg.writes {
            self.vrf_mut(w.rfh, w.vrf).write_all_lanes(w.reg, &w.values);
        }
    }
}

/// Thermal-aware wave formation: per-RFH queues in first-appearance order,
/// at most `limit` VRFs of each RFH per wave.
fn form_waves(members: &[(u16, u16)], limit: usize) -> Vec<Vec<(u16, u16)>> {
    let limit = limit.max(1);
    let mut queues: HashMap<u16, Vec<(u16, u16)>> = HashMap::new();
    let mut rfh_order: Vec<u16> = Vec::new();
    for &(rfh, vrf) in members {
        if !queues.contains_key(&rfh) {
            rfh_order.push(rfh);
        }
        queues.entry(rfh).or_default().push((rfh, vrf));
    }
    let mut waves = Vec::new();
    loop {
        let mut wave = Vec::new();
        for rfh in &rfh_order {
            if let Some(queue) = queues.get_mut(rfh) {
                let take = limit.min(queue.len());
                wave.extend(queue.drain(..take));
            }
        }
        if wave.is_empty() {
            break;
        }
        waves.push(wave);
    }
    waves
}

/// One initial-register assignment: `(rfh, vrf, reg)` plus lane values.
pub type LaneInit = ((u16, u16, u8), Vec<u64>);

/// Convenience: run `program` on a fresh reference machine with initial
/// register data. `inputs` maps `(rfh, vrf, reg)` to lane values.
///
/// # Errors
///
/// Propagates [`RefError`] from execution.
pub fn run_ref(
    geometry: RefGeometry,
    program: &Program,
    inputs: &[LaneInit],
) -> Result<RefMpu, RefError> {
    let mut mpu = RefMpu::new(geometry, 0);
    for ((rfh, vrf, reg), values) in inputs {
        mpu.write_register(*rfh, *vrf, *reg, values);
    }
    mpu.run(program)?;
    Ok(mpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpu_isa::{BinaryOp, CompareOp, InitValue, LineNum, RegId, UnaryOp, VrfId};

    fn asm(text: &str) -> Program {
        Program::parse_asm(text).expect("valid asm")
    }

    fn racer() -> RefGeometry {
        RefGeometry::racer()
    }

    #[test]
    fn simple_add_is_correct_and_counted() {
        let p = asm("COMPUTE h0 v0\nADD r0 r1 r2\nCOMPUTE_DONE");
        let mut mpu =
            run_ref(racer(), &p, &[((0, 0, 0), vec![5; 64]), ((0, 0, 1), vec![9; 64])]).unwrap();
        assert_eq!(mpu.read_register(0, 0, 2), vec![14; 64]);
        // Header + one body pass + footer.
        assert_eq!(mpu.trace().instructions, 3);
        assert_eq!(mpu.trace().scheduler_waves, 1);
    }

    #[test]
    fn thermal_waves_replay_for_same_rfh_vrfs() {
        let p = asm("COMPUTE h0 v0\nCOMPUTE h0 v1\nINC r0 r1\nCOMPUTE_DONE");
        let mut mpu =
            run_ref(racer(), &p, &[((0, 0, 0), vec![1; 64]), ((0, 1, 0), vec![7; 64])]).unwrap();
        assert_eq!(mpu.trace().scheduler_waves, 2);
        assert_eq!(mpu.read_register(0, 0, 1)[0], 2);
        assert_eq!(mpu.read_register(0, 1, 1)[0], 8);
        // 2 headers + 2 wave passes of 1 instruction + footer.
        assert_eq!(mpu.trace().instructions, 5);

        // MIMDRAM activates both in one wave, same values.
        let mut wide = run_ref(
            RefGeometry::mimdram(),
            &p,
            &[((0, 0, 0), vec![1; 512]), ((0, 1, 0), vec![7; 512])],
        )
        .unwrap();
        assert_eq!(wide.trace().scheduler_waves, 1);
        assert_eq!(wide.read_register(0, 1, 1)[0], 8);
    }

    #[test]
    fn dynamic_loop_terminates_via_efi() {
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Compare { op: CompareOp::Gt, rs: RegId(0), rt: RegId(1) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Sub, rs: RegId(0), rt: RegId(2), rd: RegId(0) },
            Instruction::JumpCond { target: LineNum(1) },
            Instruction::Unmask,
            Instruction::ComputeDone,
        ]);
        let init: Vec<u64> = (0..64).map(|i| i % 5).collect();
        let mut mpu = run_ref(
            racer(),
            &p,
            &[((0, 0, 0), init), ((0, 0, 1), vec![0; 64]), ((0, 0, 2), vec![1; 64])],
        )
        .unwrap();
        assert_eq!(mpu.read_register(0, 0, 0), vec![0; 64]);
        assert!(mpu.trace().instructions > 10);
    }

    #[test]
    fn branches_predicate_lanes() {
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Compare { op: CompareOp::Eq, rs: RegId(0), rt: RegId(1) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            Instruction::GetMask { rd: RegId(3) },
            Instruction::Unmask,
            Instruction::Init { value: InitValue::Zero, rd: RegId(4) },
            Instruction::Compare { op: CompareOp::Eq, rs: RegId(3), rt: RegId(4) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::Sub, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            Instruction::Unmask,
            Instruction::ComputeDone,
        ]);
        let a: Vec<u64> = (0..64).collect();
        let b: Vec<u64> = (0..64).map(|i| if i % 2 == 0 { i } else { 1 }).collect();
        let mut mpu =
            run_ref(racer(), &p, &[((0, 0, 0), a.clone()), ((0, 0, 1), b.clone())]).unwrap();
        let got = mpu.read_register(0, 0, 2);
        for i in 0..64 {
            let expect = if a[i] == b[i] { a[i] + b[i] } else { a[i].wrapping_sub(b[i]) };
            assert_eq!(got[i], expect, "lane {i}");
        }
    }

    #[test]
    fn subroutine_call_and_halt_convention() {
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Jump { target: LineNum(4) },
            Instruction::ComputeDone,
            Instruction::Return,
            Instruction::Binary { op: BinaryOp::Add, rs: RegId(0), rt: RegId(0), rd: RegId(1) },
            Instruction::Return,
        ]);
        let mut mpu = run_ref(racer(), &p, &[((0, 0, 0), vec![21; 64])]).unwrap();
        assert_eq!(mpu.read_register(0, 0, 1)[0], 42);
    }

    #[test]
    fn mask_resets_between_ensembles() {
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Init { value: InitValue::Zero, rd: RegId(3) },
            Instruction::SetMask { rs: RegId(3) },
            Instruction::ComputeDone,
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Unary { op: UnaryOp::Inc, rs: RegId(0), rd: RegId(1) },
            Instruction::ComputeDone,
        ]);
        let mut mpu = run_ref(racer(), &p, &[((0, 0, 0), vec![1; 64])]).unwrap();
        assert_eq!(mpu.read_register(0, 0, 1)[0], 2);
    }

    #[test]
    fn transfer_block_moves_registers_and_counts() {
        let p = asm("MOVE h0 h1\nMEMCPY v0 r0 v0 r1\nMOVE_DONE");
        let mut mpu = run_ref(racer(), &p, &[((0, 0, 0), vec![77; 64])]).unwrap();
        assert_eq!(mpu.read_register(1, 0, 1)[0], 77);
        // MOVE + MEMCPY + MOVE_DONE.
        assert_eq!(mpu.trace().instructions, 3);
        assert_eq!(mpu.trace().events, vec![RefEvent::Transfer { pairs: vec![(0, 1)], copies: 1 }]);
    }

    #[test]
    fn multi_pair_move_applies_to_every_pair() {
        let p = asm("MOVE h0 h1\nMOVE h2 h3\nMEMCPY v0 r0 v0 r0\nMOVE_DONE");
        let mut mpu =
            run_ref(racer(), &p, &[((0, 0, 0), vec![5; 64]), ((2, 0, 0), vec![6; 64])]).unwrap();
        assert_eq!(mpu.read_register(1, 0, 0)[0], 5);
        assert_eq!(mpu.read_register(3, 0, 0)[0], 6);
    }

    #[test]
    fn qrdiv_writes_quotient_and_remainder() {
        let p = asm("COMPUTE h0 v0\nQRDIV r0 r1 r2\nCOMPUTE_DONE");
        let mut mpu =
            run_ref(racer(), &p, &[((0, 0, 0), vec![17; 64]), ((0, 0, 1), vec![5; 64])]).unwrap();
        assert_eq!(mpu.read_register(0, 0, 2)[0], 3);
        assert_eq!(mpu.read_register(0, 0, 1)[0], 2);
    }

    #[test]
    fn qrdiv_is_predicated_on_both_outputs() {
        // Lanes 0..32 disabled: neither quotient nor remainder may change.
        let p = Program::from_instructions(vec![
            Instruction::Compute { rfh: 0.into(), vrf: VrfId(0) },
            Instruction::Compare { op: CompareOp::Gt, rs: RegId(3), rt: RegId(4) },
            Instruction::SetMask { rs: COND_REG },
            Instruction::Binary { op: BinaryOp::QRDiv, rs: RegId(0), rt: RegId(1), rd: RegId(2) },
            Instruction::Unmask,
            Instruction::ComputeDone,
        ]);
        let sel: Vec<u64> = (0..64).map(|i| u64::from(i >= 32)).collect();
        let mut mpu = run_ref(
            racer(),
            &p,
            &[
                ((0, 0, 0), vec![17; 64]),
                ((0, 0, 1), vec![5; 64]),
                ((0, 0, 2), vec![99; 64]),
                ((0, 0, 3), sel),
                ((0, 0, 4), vec![0; 64]),
            ],
        )
        .unwrap();
        let q = mpu.read_register(0, 0, 2);
        let r = mpu.read_register(0, 0, 1);
        for lane in 0..64 {
            if lane >= 32 {
                assert_eq!((q[lane], r[lane]), (3, 2), "enabled lane {lane}");
            } else {
                assert_eq!((q[lane], r[lane]), (99, 5), "disabled lane {lane}");
            }
        }
    }

    #[test]
    fn send_outside_system_is_an_error() {
        let p = asm("SEND mpu1\nMOVE h0 h0\nMEMCPY v0 r0 v0 r0\nMOVE_DONE\nSEND_DONE");
        let mut mpu = RefMpu::new(racer(), 0);
        let err = mpu.run(&p).unwrap_err();
        assert!(matches!(err, RefError::CommOutsideSystem { .. }));
    }

    #[test]
    fn geometry_violations_are_reported() {
        let p = asm("COMPUTE h9 v0\nNOP\nCOMPUTE_DONE");
        let err = RefMpu::new(racer(), 0).run(&p).unwrap_err();
        assert!(matches!(err, RefError::GeometryExceeded { .. }));
    }

    #[test]
    fn stray_instruction_detected() {
        let p = Program::from_instructions(vec![Instruction::Unmask]);
        let err = RefMpu::new(racer(), 0).run(&p).unwrap_err();
        assert!(matches!(err, RefError::StrayInstruction { .. }));
    }

    #[test]
    fn wave_formation_respects_limits() {
        let members = vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)];
        let waves = form_waves(&members, 1);
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0], vec![(0, 0), (1, 0)]);
        assert_eq!(waves[1], vec![(0, 1), (1, 1)]);
        assert_eq!(waves[2], vec![(0, 2)]);
    }
}
