//! Cross-crate integration tests: the full pipeline from ezpim source text
//! through assembly, binary encoding, validation, gate-exact simulation on
//! every backend, and statistics — exercised through the `mpu` umbrella
//! crate exactly as a downstream user would.
//!
//! Expected values are not hand-written: every scenario is checked
//! lane-exactly against the word-level `refmodel` interpreter on the same
//! geometry, so the tests pin simulator-vs-architecture agreement rather
//! than a particular precomputed answer.

use conformance::ref_geometry;
use mpu::backend::{DatapathKind, Plane};
use mpu::ezpim;
use mpu::isa::Program;
use mpu::mastodon::{run_single, Mpu, SimConfig, System};
use refmodel::{run_ref, LaneInit, RefMpu, RefSystem};

const BACKENDS: [DatapathKind; 5] = DatapathKind::ALL;

/// Runs `program` on the reference model with `kind`'s geometry.
fn reference(kind: DatapathKind, program: &Program, inputs: &[LaneInit]) -> RefMpu {
    run_ref(ref_geometry(kind), program, inputs).expect("reference run")
}

#[test]
fn text_to_silicon_pipeline() {
    // ezpim text → structured program → ISA binary → words → back → run.
    let src = "\
ensemble h0.v0 {
    INIT0 r4
    while r0 > r1 {
        ADD r4 r2 r4
        SUB r0 r2 r0
    }
}
";
    let program = ezpim::parse(src).unwrap().assemble().unwrap();
    program.validate().unwrap();
    let words = program.encode();
    let decoded = Program::decode(&words).unwrap();
    assert_eq!(program, decoded);

    for kind in BACKENDS {
        let cfg = SimConfig::mpu(kind);
        let lanes = cfg.datapath.geometry().lanes_per_vrf;
        let init: Vec<u64> = (0..lanes as u64).map(|i| i % 11).collect();
        let inputs: Vec<((u16, u16, u8), Vec<u64>)> = vec![
            ((0, 0, 0), init.clone()),
            ((0, 0, 1), vec![0; lanes]),
            ((0, 0, 2), vec![1; lanes]),
        ];
        let (stats, mut mpu) = run_single(cfg, &decoded, &inputs).unwrap();
        let mut reference = reference(kind, &decoded, &inputs);
        for reg in [0u8, 4] {
            assert_eq!(
                mpu.read_register(0, 0, reg).unwrap(),
                reference.read_register(0, 0, reg),
                "{kind:?} r{reg}"
            );
        }
        assert!(stats.uops > 0);
        assert_eq!(stats.offload_events, 0);
        assert_eq!(stats.instructions, reference.trace().instructions, "{kind:?}");
    }
}

#[test]
fn same_binary_same_results_across_backends() {
    let program = Program::parse_asm(
        "COMPUTE h0 v0\n\
         CMPGT r0 r1\n\
         SETMASK r63\n\
         INC r2 r2\n\
         UNMASK\n\
         COMPUTE_DONE",
    )
    .unwrap();
    let mut outcomes = Vec::new();
    for kind in BACKENDS {
        let cfg = SimConfig::mpu(kind);
        let lanes = cfg.datapath.geometry().lanes_per_vrf;
        let inputs: Vec<((u16, u16, u8), Vec<u64>)> = vec![
            ((0, 0, 0), (0..lanes as u64).collect()),
            ((0, 0, 1), vec![31; lanes]),
            ((0, 0, 2), vec![100; lanes]),
        ];
        let (_, mut mpu) = run_single(cfg, &program, &inputs).unwrap();
        // Lane-exact agreement with the reference model on every lane of
        // this backend's geometry.
        let got = mpu.read_register(0, 0, 2).unwrap();
        let want = reference(kind, &program, &inputs).read_register(0, 0, 2);
        assert_eq!(got, want, "{kind:?}");
        outcomes.push(got[..64].to_vec());
    }
    // The first 64 lanes saw identical inputs on every backend, so the
    // (reference-checked) results must also agree across geometries.
    for pair in outcomes.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
}

#[test]
fn multi_mpu_pipeline_with_compute_and_comm() {
    // MPU 0 squares its data and ships it; MPU 1 adds its own input to the
    // received values. Checked against the reference system on every
    // backend's geometry.
    let p0 = ezpim::parse(
        "ensemble h0.v0 {\n MUL r0 r0 r2\n}\n\
         send mpu1 {\n move h0 -> h0 {\n memcpy v0.r2 -> v0.r3\n }\n}\n",
    )
    .unwrap()
    .assemble()
    .unwrap();
    // MUL requires rd != sources; r0*r0 -> r2 is fine.
    let p1 = ezpim::parse("recv mpu0\nensemble h0.v0 {\n ADD r3 r1 r4\n}\n")
        .unwrap()
        .assemble()
        .unwrap();
    for kind in BACKENDS {
        let cfg = SimConfig::mpu(kind);
        let lanes = cfg.datapath.geometry().lanes_per_vrf;
        let mut sys = System::new(cfg, 2);
        sys.set_program(0, p0.clone());
        sys.set_program(1, p1.clone());
        sys.mpu_mut(0).write_register(0, 0, 0, &vec![9; lanes]).unwrap();
        sys.mpu_mut(1).write_register(0, 0, 1, &vec![19; lanes]).unwrap();
        let stats = sys.run().unwrap();

        let mut rsys = RefSystem::new(ref_geometry(kind), 2);
        rsys.set_program(0, p0.clone());
        rsys.set_program(1, p1.clone());
        rsys.mpu_mut(0).write_register(0, 0, 0, &vec![9; lanes]);
        rsys.mpu_mut(1).write_register(0, 0, 1, &vec![19; lanes]);
        rsys.run().unwrap();

        assert_eq!(
            sys.mpu_mut(1).read_register(0, 0, 4).unwrap(),
            rsys.mpu_mut(1).read_register(0, 0, 4),
            "{kind:?}"
        );
        assert_eq!(stats.messages_sent, rsys.total_trace().messages_sent, "{kind:?}");
    }
}

#[test]
fn baseline_mode_is_functionally_identical_but_slower() {
    let src = "\
ensemble h0.v0 h1.v0 {
    for r5 < r6 {
        if r0 > r1 {
            SUB r0 r1 r0
        } else {
            ADD r0 r2 r0
        }
    }
}
";
    let program = ezpim::parse(src).unwrap().assemble().unwrap();
    let lanes = 64;
    let inputs: Vec<((u16, u16, u8), Vec<u64>)> = vec![
        ((0, 0, 0), (0..lanes as u64).map(|i| i * 3).collect()),
        ((0, 0, 1), vec![5; lanes]),
        ((0, 0, 2), vec![2; lanes]),
        ((0, 0, 6), vec![4; lanes]),
        ((1, 0, 0), (0..lanes as u64).map(|i| i * 7).collect()),
        ((1, 0, 1), vec![3; lanes]),
        ((1, 0, 2), vec![1; lanes]),
        ((1, 0, 6), vec![4; lanes]),
    ];
    let (fast, mut m1) =
        run_single(SimConfig::mpu(DatapathKind::Racer), &program, &inputs).unwrap();
    let (slow, mut m2) =
        run_single(SimConfig::baseline(DatapathKind::Racer), &program, &inputs).unwrap();
    let mut reference = reference(DatapathKind::Racer, &program, &inputs);
    for (rfh, vrf) in [(0, 0), (1, 0)] {
        let want = reference.read_register(rfh, vrf, 0);
        assert_eq!(m1.read_register(rfh, vrf, 0).unwrap(), want, "mpu mode h{rfh}");
        assert_eq!(m2.read_register(rfh, vrf, 0).unwrap(), want, "baseline mode h{rfh}");
    }
    assert!(slow.cycles > fast.cycles);
    assert!(slow.offload_events > 0);
    assert_eq!(fast.offload_events, 0);
}

#[test]
fn mask_state_is_architecturally_visible() {
    // GETMASK exposes the lane mask to the program; the control path's
    // conditional register feeds SETMASK — end to end through the stack,
    // with the reference model defining what the mask must contain.
    let program = Program::parse_asm(
        "COMPUTE h0 v0\n\
         CMPEQ r0 r1\n\
         SETMASK r63\n\
         GETMASK r2\n\
         UNMASK\n\
         COMPUTE_DONE",
    )
    .unwrap();
    let a: Vec<u64> = (0..64).collect();
    let b: Vec<u64> = (0..64).map(|i| if i % 3 == 0 { i } else { 99 }).collect();
    for kind in BACKENDS {
        let inputs: Vec<((u16, u16, u8), Vec<u64>)> =
            vec![((0, 0, 0), a.clone()), ((0, 0, 1), b.clone())];
        let mut mpu = Mpu::new(SimConfig::mpu(kind), 0.into());
        mpu.write_register(0, 0, 0, &a).unwrap();
        mpu.write_register(0, 0, 1, &b).unwrap();
        mpu.run(&program).unwrap();
        let mask = mpu.read_register(0, 0, 2).unwrap();
        let want = reference(kind, &program, &inputs).read_register(0, 0, 2);
        assert_eq!(mask, want, "{kind:?}");
        // The reference agrees with first principles on the data lanes.
        for (lane, &bit) in want.iter().enumerate().take(64) {
            assert_eq!(bit, u64::from(lane % 3 == 0), "{kind:?} lane {lane}");
        }
    }
    let _ = Plane::Cond; // public plane addressing is part of the API
}
