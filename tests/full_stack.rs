//! Cross-crate integration tests: the full pipeline from ezpim source text
//! through assembly, binary encoding, validation, gate-exact simulation on
//! every backend, and statistics — exercised through the `mpu` umbrella
//! crate exactly as a downstream user would.

use mpu::backend::{DatapathKind, Plane};
use mpu::ezpim;
use mpu::isa::Program;
use mpu::mastodon::{run_single, Mpu, SimConfig, System};

const BACKENDS: [DatapathKind; 3] =
    [DatapathKind::Racer, DatapathKind::Mimdram, DatapathKind::DualityCache];

#[test]
fn text_to_silicon_pipeline() {
    // ezpim text → structured program → ISA binary → words → back → run.
    let src = "\
ensemble h0.v0 {
    INIT0 r4
    while r0 > r1 {
        ADD r4 r2 r4
        SUB r0 r2 r0
    }
}
";
    let program = ezpim::parse(src).unwrap().assemble().unwrap();
    program.validate().unwrap();
    let words = program.encode();
    let decoded = Program::decode(&words).unwrap();
    assert_eq!(program, decoded);

    for kind in BACKENDS {
        let cfg = SimConfig::mpu(kind);
        let lanes = cfg.datapath.geometry().lanes_per_vrf;
        let init: Vec<u64> = (0..lanes as u64).map(|i| i % 11).collect();
        let (stats, mut mpu) = run_single(
            cfg,
            &decoded,
            &[((0, 0, 0), init.clone()), ((0, 0, 1), vec![0; lanes]), ((0, 0, 2), vec![1; lanes])],
        )
        .unwrap();
        // r4 accumulates one `r2` per iteration: equals the start value.
        let acc = mpu.read_register(0, 0, 4).unwrap();
        assert_eq!(acc, init, "{kind:?}");
        assert!(stats.uops > 0);
        assert_eq!(stats.offload_events, 0);
    }
}

#[test]
fn same_binary_same_results_across_backends() {
    let program = Program::parse_asm(
        "COMPUTE h0 v0\n\
         CMPGT r0 r1\n\
         SETMASK r63\n\
         INC r2 r2\n\
         UNMASK\n\
         COMPUTE_DONE",
    )
    .unwrap();
    let mut outcomes = Vec::new();
    for kind in BACKENDS {
        let cfg = SimConfig::mpu(kind);
        let lanes = cfg.datapath.geometry().lanes_per_vrf;
        let (_, mut mpu) = run_single(
            cfg,
            &program,
            &[
                ((0, 0, 0), (0..lanes as u64).collect()),
                ((0, 0, 1), vec![31; lanes]),
                ((0, 0, 2), vec![100; lanes]),
            ],
        )
        .unwrap();
        // Only lanes with index > 31 increment; compare the first 64 lanes
        // across backends (their lane counts differ).
        let got = mpu.read_register(0, 0, 2).unwrap();
        outcomes.push(got[..64].to_vec());
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[1], outcomes[2]);
    for (lane, &v) in outcomes[0].iter().enumerate() {
        assert_eq!(v, if lane > 31 { 101 } else { 100 }, "lane {lane}");
    }
}

#[test]
fn multi_mpu_pipeline_with_compute_and_comm() {
    // MPU 0 squares its data and ships it; MPU 1 adds its own and replies
    // with a comparison mask readout.
    let mut sys = System::new(SimConfig::mpu(DatapathKind::Racer), 2);
    let p0 = ezpim::parse(
        "ensemble h0.v0 {\n MUL r0 r0 r2\n}\n\
         send mpu1 {\n move h0 -> h0 {\n memcpy v0.r2 -> v0.r3\n }\n}\n",
    )
    .unwrap()
    .assemble()
    .unwrap();
    // MUL requires rd != sources; r0*r0 -> r2 is fine.
    let p1 = ezpim::parse("recv mpu0\nensemble h0.v0 {\n ADD r3 r1 r4\n}\n")
        .unwrap()
        .assemble()
        .unwrap();
    sys.set_program(0, p0);
    sys.set_program(1, p1);
    sys.mpu_mut(0).write_register(0, 0, 0, &vec![9; 64]).unwrap();
    sys.mpu_mut(1).write_register(0, 0, 1, &vec![19; 64]).unwrap();
    let stats = sys.run().unwrap();
    assert_eq!(sys.mpu_mut(1).read_register(0, 0, 4).unwrap()[0], 100);
    assert_eq!(stats.messages_sent, 1);
}

#[test]
fn baseline_mode_is_functionally_identical_but_slower() {
    let src = "\
ensemble h0.v0 h1.v0 {
    for r5 < r6 {
        if r0 > r1 {
            SUB r0 r1 r0
        } else {
            ADD r0 r2 r0
        }
    }
}
";
    let program = ezpim::parse(src).unwrap().assemble().unwrap();
    let lanes = 64;
    let inputs: Vec<((u16, u16, u8), Vec<u64>)> = vec![
        ((0, 0, 0), (0..lanes as u64).map(|i| i * 3).collect()),
        ((0, 0, 1), vec![5; lanes]),
        ((0, 0, 2), vec![2; lanes]),
        ((0, 0, 6), vec![4; lanes]),
        ((1, 0, 0), (0..lanes as u64).map(|i| i * 7).collect()),
        ((1, 0, 1), vec![3; lanes]),
        ((1, 0, 2), vec![1; lanes]),
        ((1, 0, 6), vec![4; lanes]),
    ];
    let (fast, mut m1) =
        run_single(SimConfig::mpu(DatapathKind::Racer), &program, &inputs).unwrap();
    let (slow, mut m2) =
        run_single(SimConfig::baseline(DatapathKind::Racer), &program, &inputs).unwrap();
    for (rfh, vrf) in [(0, 0), (1, 0)] {
        assert_eq!(m1.read_register(rfh, vrf, 0).unwrap(), m2.read_register(rfh, vrf, 0).unwrap());
    }
    assert!(slow.cycles > fast.cycles);
    assert!(slow.offload_events > 0);
    assert_eq!(fast.offload_events, 0);
}

#[test]
fn mask_state_is_architecturally_visible() {
    // GETMASK exposes the lane mask to the program; the control path's
    // conditional register feeds SETMASK — end to end through the stack.
    let program = Program::parse_asm(
        "COMPUTE h0 v0\n\
         CMPEQ r0 r1\n\
         SETMASK r63\n\
         GETMASK r2\n\
         UNMASK\n\
         COMPUTE_DONE",
    )
    .unwrap();
    let mut mpu = Mpu::new(SimConfig::mpu(DatapathKind::Racer), 0.into());
    let a: Vec<u64> = (0..64).collect();
    let b: Vec<u64> = (0..64).map(|i| if i % 3 == 0 { i } else { 99 }).collect();
    mpu.write_register(0, 0, 0, &a).unwrap();
    mpu.write_register(0, 0, 1, &b).unwrap();
    mpu.run(&program).unwrap();
    let mask = mpu.read_register(0, 0, 2).unwrap();
    for (lane, &bit) in mask.iter().enumerate().take(64) {
        assert_eq!(bit, u64::from(lane % 3 == 0), "lane {lane}");
    }
    let _ = Plane::Cond; // public plane addressing is part of the API
}
