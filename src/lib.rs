//! Umbrella crate re-exporting the MPU reproduction workspace.
pub use dpapi;
pub use ezpim;
pub use mastodon;
pub use mpu_isa as isa;
pub use platforms;
pub use pum_backend as backend;
pub use workloads;
