//! Quickstart: write a small MPU program with ezpim, run it gate-exactly
//! on the simulated RACER datapath, and read back results and costs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mpu::backend::DatapathKind;
use mpu::ezpim::{Cond, EzProgram};
use mpu::isa::RegId;
use mpu::mastodon::{run_single, SimConfig};

fn r(i: u16) -> RegId {
    RegId(i)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A per-lane dynamic computation: keep halving r0 until it drops
    // below the threshold in r1, counting iterations in r4.
    //
    //   while (r0 > r1) { r0 = r0 / r2; r4 += 1 }
    let mut ez = EzProgram::new();
    ez.ensemble(&[(0, 0)], |b| {
        b.init0(r(4));
        b.while_loop(Cond::Gt(r(0), r(1)), |b| {
            b.qdiv(r(0), r(2), r(3));
            b.mov(r(3), r(0));
            b.inc(r(4), r(4));
        });
    })?;
    let program = ez.assemble()?;

    println!("ezpim statements: {}", ez.statements());
    println!("lowered MPU ISA ({} instructions):\n{program}", program.len());

    // Load data: 64 lanes, each with its own starting value — lanes
    // diverge and the EFI exits the loop only when every lane is done.
    let starts: Vec<u64> = (0..64).map(|i| 1 << (i % 20)).collect();
    let config = SimConfig::mpu(DatapathKind::Racer);
    let (stats, mut mpu) = run_single(
        config,
        &program,
        &[((0, 0, 0), starts.clone()), ((0, 0, 1), vec![2; 64]), ((0, 0, 2), vec![2; 64])],
    )?;

    let counts = mpu.read_register(0, 0, 4)?;
    for lane in [0usize, 5, 13, 19] {
        println!("lane {lane:2}: start {:>8} -> {} halvings", starts[lane], counts[lane]);
        // Cross-check against the obvious host computation.
        let mut x = starts[lane];
        let mut n = 0;
        while x > 2 {
            x /= 2;
            n += 1;
        }
        assert_eq!(counts[lane], n);
    }

    println!(
        "\n{} ISA instructions executed as {} micro-ops in {} cycles ({:.2} us)",
        stats.instructions,
        stats.uops,
        stats.cycles,
        stats.time_us()
    );
    println!(
        "energy: datapath {:.1} nJ, front end {:.1} nJ (recipe-cache hit rate {:.0}%)",
        stats.energy.datapath_pj / 1000.0,
        stats.energy.frontend_pj / 1000.0,
        100.0 * stats.recipe_hit_rate()
    );
    println!("no host CPU was involved: {} offload events", stats.offload_events);
    Ok(())
}
