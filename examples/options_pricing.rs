//! End-to-end options pricing: the BlackScholes application on two
//! cooperating MPUs, comparing the MPU front end against the Baseline
//! (CPU-offload) configuration — the paper's §VIII-D story in miniature.
//!
//! ```sh
//! cargo run --example options_pricing
//! ```

use mpu::backend::DatapathKind;
use mpu::mastodon::SimConfig;
use mpu::workloads::apps::{run_app, App, BlackScholes};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = BlackScholes;
    let mpus = app.default_mpus();
    println!(
        "pricing {} options per MPU pair (Newton sqrt + shift-loop exp + rational CDF)\n",
        SimConfig::mpu(DatapathKind::Racer).datapath.geometry().lanes_per_vrf * 2
    );

    let mpu_run = run_app(&app, &SimConfig::mpu(DatapathKind::Racer), mpus, 2026)?;
    let base_run = run_app(&app, &SimConfig::baseline(DatapathKind::Racer), mpus, 2026)?;

    for run in [&mpu_run, &base_run] {
        let (compute, inter, offchip) = run.stats.time_breakdown();
        println!(
            "{:<17} {:>10.2} us  {:>9.2} uJ  breakdown: {:>4.1}% compute, {:>4.1}% \
             inter-MPU, {:>4.1}% off-chip",
            run.label,
            run.stats.time_us(),
            run.stats.energy.total_pj() / 1e6,
            100.0 * compute,
            100.0 * inter,
            100.0 * offchip,
        );
    }
    println!(
        "\nMPU over Baseline: {:.2}x faster, {:.2}x less energy (paper: 2.50x faster)",
        base_run.stats.time_ns() / mpu_run.stats.time_ns(),
        base_run.stats.energy.total_pj() / mpu_run.stats.energy.total_pj()
    );
    println!(
        "code size: {} ezpim statements vs {} lowered ISA instructions",
        mpu_run.ezpim_statements, mpu_run.isa_instructions
    );
    assert!(mpu_run.verified && base_run.verified);
    Ok(())
}
