//! ezpim lowering, Fig. 7 style: shows the Table II instruction sequences
//! the assembler generates for loops, branches, and nested branches, side
//! by side with the source.
//!
//! ```sh
//! cargo run --example ezpim_lowering
//! ```

use mpu::ezpim;

fn show(title: &str, src: &str) -> Result<(), Box<dyn std::error::Error>> {
    let program = ezpim::parse(src)?.assemble()?;
    println!("== {title} ==");
    println!("--- ezpim source ---\n{src}");
    println!("--- lowered MPU ISA ---\n{program}");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 7a: while loop → conditional evaluation + JUMP_COND.
    show(
        "Fig. 7a — dynamic while loop",
        "ensemble h0.v0 {\n    while r0 > r1 {\n        SUB r0 r2 r0\n    }\n}\n",
    )?;
    // Fig. 7b: branch → conditional register + SETMASK predication.
    show(
        "Fig. 7b — if/else branch",
        "ensemble h0.v0 {\n    if r0 == r1 {\n        ADD r0 r1 r2\n    } else {\n        SUB r0 r1 r2\n    }\n}\n",
    )?;
    // Fig. 7c: nesting → GETMASK/SETMASK mask arithmetic.
    show(
        "Fig. 7c — nested branches",
        "ensemble h0.v0 {\n    if r0 > r1 {\n        if r2 < r3 {\n            INC r4 r4\n        }\n    }\n}\n",
    )?;
    // Subroutines → JUMP/RETURN with a return-address stack.
    show(
        "subroutine call",
        "ensemble h0.v0 {\n    call square\n}\nsub square {\n    MUL r0 r0 r2\n}\n",
    )?;
    Ok(())
}
