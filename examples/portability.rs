//! Portability: the same MPU binary — bit for bit — executes on every
//! shipped PUM datapath (ReRAM RACER, DRAM MIMDRAM, SRAM Duality Cache,
//! pLUTo LUT-in-DRAM, and the UPMEM-style DPU), because the MPU ISA is
//! microarchitecture-agnostic and each backend's I2M decoder expands
//! instructions into its own micro-op recipes — bit-serial gates, LUT
//! queries, or word-serial near-bank ops.
//!
//! ```sh
//! cargo run --example portability
//! ```

use mpu::backend::DatapathKind;
use mpu::isa::Program;
use mpu::mastodon::{run_single, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One binary, assembled once, from Table II-style text.
    let program = Program::parse_asm(
        "COMPUTE h0 v0\n\
         MUL r0 r1 r2      # fixed-point scale\n\
         ADD r2 r3 r2      # bias\n\
         RELU r2 r4        # activation\n\
         POPC r4 r5        # population count of the result\n\
         COMPUTE_DONE",
    )?;
    program.validate()?;
    let words = program.encode();
    println!("binary: {} instructions, {} bytes\n", program.len(), words.len() * 4);

    for kind in DatapathKind::ALL {
        let config = SimConfig::mpu(kind);
        let lanes = config.datapath.geometry().lanes_per_vrf;
        let a: Vec<u64> = (0..lanes as u64).collect();
        let (stats, mut mpu) = run_single(
            config.clone(),
            &program,
            &[((0, 0, 0), a.clone()), ((0, 0, 1), vec![3; lanes]), ((0, 0, 3), vec![10; lanes])],
        )?;
        let out = mpu.read_register(0, 0, 5)?;
        // Same architectural result everywhere.
        for (lane, &got) in out.iter().enumerate() {
            let expect = u64::from((a[lane] * 3 + 10).count_ones());
            assert_eq!(got, expect, "{kind:?} lane {lane}");
        }
        println!(
            "{:<22} {:>6} lanes  {:>9} uops  {:>10} cycles  {:>9.1} nJ",
            config.label(),
            lanes,
            stats.uops,
            stats.cycles,
            stats.energy.total_pj() / 1000.0
        );
    }
    println!("\nidentical results from five different memory technologies.");
    Ok(())
}
