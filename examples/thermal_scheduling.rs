//! Thermal-aware scheduling (paper Fig. 10) and autotuning (§VI-C):
//! an ensemble naming more VRFs than an RF holder may activate is replayed
//! in waves, invisibly to the program — and the autotuner finds the best
//! ensemble shape for each datapath automatically.
//!
//! ```sh
//! cargo run --example thermal_scheduling
//! ```

use mpu::backend::DatapathKind;
use mpu::isa::{BinaryOp, Instruction, Program, RegId, RfhId, VrfId};
use mpu::mastodon::{autotune, run_single, SimConfig};

fn busy_program(members: &[(u16, u16)]) -> Program {
    let mut instrs: Vec<Instruction> = members
        .iter()
        .map(|&(h, v)| Instruction::Compute { rfh: RfhId(h), vrf: VrfId(v) })
        .collect();
    for _ in 0..4 {
        instrs.push(Instruction::Binary {
            op: BinaryOp::Add,
            rs: RegId(0),
            rt: RegId(1),
            rd: RegId(2),
        });
    }
    instrs.push(Instruction::ComputeDone);
    Program::from_instructions(instrs)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("-- wave scheduling under the thermal cap --");
    for kind in DatapathKind::ALL {
        let cfg = SimConfig::mpu(kind);
        let limit = cfg.datapath.geometry().active_vrfs_per_rfh;
        for vrfs in [1usize, 4, 8] {
            // All VRFs live in RFH 0 — worst case for the limit.
            let members: Vec<(u16, u16)> = (0..vrfs as u16).map(|v| (0, v)).collect();
            let (stats, _) = run_single(cfg.clone(), &busy_program(&members), &[])?;
            println!(
                "{:<13} {vrfs} VRFs in one RFH (limit {limit:>3}): {:>2} waves, {:>7} cycles",
                cfg.datapath.name(),
                stats.scheduler_waves,
                stats.cycles
            );
        }
    }

    println!("\n-- autotuning the ensemble shape (paper §VI-C) --");
    for kind in DatapathKind::ALL {
        let cfg = SimConfig::mpu(kind);
        let results = autotune(&cfg, |members| (busy_program(members), Vec::new()))?;
        let best = &results[0];
        let worst = results.last().unwrap();
        println!(
            "{:<13} best shape: {} RFHs x {} VRFs ({:.3} elem/cycle); worst: {} x {} \
             ({:.3})",
            cfg.datapath.name(),
            best.shape.rfhs,
            best.shape.vrfs_per_rfh,
            best.throughput,
            worst.shape.rfhs,
            worst.shape.vrfs_per_rfh,
            worst.throughput,
        );
    }
    println!(
        "\nthe same binary stays portable: the runtime replays waves to satisfy each \
         datapath's RFH constraint, and retuning is just a shape sweep."
    );
    Ok(())
}
