//! Genome read matching: the EditDistance application's 2-D systolic MPU
//! grid streaming reads past resident reads, with bitwise XOR + POPC
//! alignment sweeps — entirely inside the memory, no host CPU.
//!
//! ```sh
//! cargo run --example genome_match
//! ```

use mpu::backend::DatapathKind;
use mpu::mastodon::SimConfig;
use mpu::workloads::apps::{run_app, EditDistance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = EditDistance;
    let mpus = 16; // 4x4 systolic grid
    let config = SimConfig::mpu(DatapathKind::Racer);
    let side = (mpus as f64).sqrt() as usize;
    let reads = config.datapath.geometry().lanes_per_vrf * 8 * side * side;
    println!("matching {reads} resident reads against two systolic read streams\n");

    let run = run_app(&app, &config, mpus, 7)?;
    println!(
        "{}: {} MPUs, {:.2} us, {:.2} uJ, {} messages ({} KiB over the NoC)",
        run.label,
        run.mpus,
        run.stats.time_us(),
        run.stats.energy.total_pj() / 1e6,
        run.stats.messages_sent,
        run.stats.noc_bytes / 1024,
    );
    let (compute, inter, offchip) = run.stats.time_breakdown();
    println!(
        "time breakdown: {:.1}% compute, {:.1}% inter-MPU systolic streaming, \
         {:.1}% off-chip",
        100.0 * compute,
        100.0 * inter,
        100.0 * offchip
    );
    assert!(run.verified, "distances match the golden model");
    println!("\nall minimum distances verified against the host golden model.");
    Ok(())
}
