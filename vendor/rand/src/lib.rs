//! Offline stand-in for `rand` 0.9.
//!
//! The workspace's build environment has no crates.io access, so this path
//! crate provides the slice of the `rand` API the repository uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and
//! [`Rng::random_range`] over half-open / inclusive integer ranges.
//!
//! The generator is SplitMix64 — deterministic, seedable, and statistically
//! solid for test-data generation (it is the seeding generator used by many
//! PRNG suites). The bit streams differ from upstream `rand`'s StdRng
//! (ChaCha12); every consumer in this repository derives its golden values
//! from the same generator, so only determinism matters, not the exact
//! stream.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 fresh bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (`rand::SeedableRng` stand-in).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sampleable range type (`rand::distr::uniform::SampleRange` stand-in).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(mod_u128(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add(mod_u128(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

fn mod_u128(bits: u64, span: u128) -> u128 {
    (bits as u128) % span
}

/// User-facing sampling methods (`rand::Rng` stand-in).
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a random `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random_range(0..1000u64)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        assert!(xs.iter().all(|&v| v < 1000));
    }

    #[test]
    fn inclusive_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.random_range(0..=3u16) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
