//! Offline stand-in for `serde`.
//!
//! The workspace's build environment has no crates.io access, so this
//! path crate supplies just enough of serde's surface for the repository
//! to compile: the `Serialize`/`Deserialize` trait names and the derive
//! macros (re-exported from the sibling no-op `serde_derive`). The traits
//! are blanket-implemented markers — no actual (de)serialization happens,
//! and none is needed by the simulator or its tests.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Probe {
        #[allow(dead_code)]
        field: u64,
    }

    #[test]
    fn derives_compile() {
        let _ = Probe { field: 1 };
    }
}
