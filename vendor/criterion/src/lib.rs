//! Offline stand-in for `criterion` 0.7.
//!
//! The workspace's build environment has no crates.io access, so this path
//! crate implements the slice of criterion the repository's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::sample_size`] / `bench_function` / `finish`,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Instead of criterion's statistical analysis, each benchmark runs a short
//! warm-up followed by `sample_size` timed samples and prints the median
//! per-iteration time. That is enough to compare configurations (the
//! ablation benches) and to measure the parallel-sweep speedup.

use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Target wall-clock budget for one sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(200);

/// Passed to each benchmark closure; times the hot loop.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the median per-iteration duration over
    /// the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how many iterations fit one budget?
        let cal_start = Instant::now();
        let mut cal_iters: u64 = 0;
        loop {
            std::hint::black_box(routine());
            cal_iters += 1;
            if cal_start.elapsed() >= SAMPLE_BUDGET / 4 || cal_iters >= 1 << 20 {
                break;
            }
        }
        let per_iter = cal_start.elapsed() / cal_iters as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1 << 10
        } else {
            (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64
        };

        let mut medians: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            medians.push(start.elapsed() / iters_per_sample as u32);
        }
        medians.sort();
        self.last_median = Some(medians[medians.len() / 2]);
    }
}

/// Top-level benchmark driver (`criterion::Criterion` stand-in).
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

/// A named benchmark group with its own sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for upstream API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { samples, last_median: None };
    f(&mut b);
    match b.last_median {
        Some(t) => println!("{id:<48} time: {t:>12.3?} /iter (median of {samples})"),
        None => println!("{id:<48} (no iter call)"),
    }
}

/// Re-export site of `std::hint::black_box` to mirror criterion's API.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_routine() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_function(format!("fmt_{}", 1), |b| b.iter(|| black_box(1u64 << 4)));
        group.finish();
    }
}
