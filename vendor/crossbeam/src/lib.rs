//! Offline stand-in for `crossbeam` 0.8.
//!
//! The workspace's build environment has no crates.io access, so this path
//! crate provides the one API the repository uses — [`thread::scope`] —
//! implemented on top of `std::thread::scope` (stable since Rust 1.63).
//! The signature mirrors crossbeam's: spawned closures receive a
//! [`thread::Scope`] handle so they can spawn further scoped threads, and
//! `scope` returns `Result` (always `Ok`; panics propagate from the
//! closure as in upstream).

/// Scoped-thread spawning (`crossbeam::thread` stand-in).
pub mod thread {
    use std::thread as std_thread;

    /// Handle for spawning threads bound to an enclosing [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it
        /// can spawn nested scoped threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a [`Scope`]; all spawned threads are joined before
    /// this returns. Always `Ok` — a child panic propagates as a panic,
    /// matching how the repository (and most users) `.unwrap()` the result.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let sum = AtomicU64::new(0);
        let data = vec![1u64, 2, 3, 4];
        crate::thread::scope(|s| {
            for &v in &data {
                let sum = &sum;
                s.spawn(move |_| sum.fetch_add(v, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let hits = AtomicU64::new(0);
        crate::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
