//! Offline stand-in for `parking_lot` 0.12.
//!
//! The workspace's build environment has no crates.io access, so this path
//! crate wraps `std::sync` primitives behind parking_lot's poison-free
//! API: [`Mutex::lock`] / [`RwLock::read`] / [`RwLock::write`] return
//! guards directly instead of `Result`. Poisoning is recovered by taking
//! the inner guard — if a writer panicked mid-update the data may be
//! torn, exactly the trade parking_lot itself makes by not poisoning.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Poison-free mutex (`parking_lot::Mutex` stand-in).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock (`parking_lot::RwLock` stand-in).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(0u64);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1u32]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let l = RwLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| *l.write() += 1);
            }
        });
        assert_eq!(*l.read(), 4);
    }
}
