//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real serde derive machinery is replaced by no-op derives: the
//! `#[derive(Serialize, Deserialize)]` attributes compile (including
//! `#[serde(...)]` helper attributes) but generate no code. Nothing in the
//! workspace serializes at runtime — the derives only exist so data types
//! advertise serializability for downstream tooling.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
