//! Offline stand-in for `proptest` 1.x.
//!
//! The workspace's build environment has no crates.io access, so this path
//! crate reimplements the slice of proptest the repository's tests use:
//! the [`Strategy`] trait with `prop_map`/`boxed`, range and tuple
//! strategies, [`Just`], [`any`], `prop::sample::select`,
//! `prop::collection::vec`, `prop::bool::ANY`, the [`proptest!`],
//! [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`] macros,
//! [`ProptestConfig`] and [`TestCaseError`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via `Debug` but is not minimized), and case generation is a
//! deterministic SplitMix64 stream seeded from the test's name — every run
//! explores the same cases, which suits a CI-pinned reproduction.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------- rng ----

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one named test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h ^ ((case as u64) << 32 | 0x5bd1_e995) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

// ----------------------------------------------------------- strategy ----

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree: `sample` directly
/// draws a value (no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Output of [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer range strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// Tuple strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// -------------------------------------------------------------- any ----

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ------------------------------------------------------------- prop ----

/// Namespaced strategy constructors (`proptest::prop`).
pub mod prop {
    /// Sampling from explicit value lists.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// Uniformly selects one element of `items`.
        ///
        /// # Panics
        ///
        /// Panics if `items` is empty.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select over empty list");
            Select(items)
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Strategy type of [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// Uniform `bool` strategy.
        pub const ANY: AnyBool = AnyBool;
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Length specification for [`vec`]: an exact length or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { min: n, max_exclusive: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec length range");
                Self { min: r.start, max_exclusive: r.end }
            }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_exclusive - self.size.min) as u64;
                let len = self.size.min + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A vector whose length is drawn from `size` and whose elements
        /// are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

// ----------------------------------------------------------- harness ----

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A test-case failure (what `prop_assert*` and `TestCaseError::fail`
/// produce).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with `reason`.
    pub fn fail(reason: impl fmt::Display) -> Self {
        Self(reason.to_string())
    }

    /// Alias of [`TestCaseError::fail`] kept for upstream compatibility.
    pub fn reject(reason: impl fmt::Display) -> Self {
        Self::fail(reason)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __result: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        panic!("proptest {} case {}/{} failed: {}",
                            stringify!($name), __case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat), )+ ])
    };
}

/// `assert!` that fails the case (with context) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Everything a test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
        TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        let s = (0u16..8).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v < 16 && v % 2 == 0);
        }
        let inc = (0u64..=3).boxed();
        for _ in 0..100 {
            assert!(inc.sample(&mut rng) <= 3);
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let mut rng = TestRng::for_case("oneof", 0);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..64 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn collection_vec_respects_length_spec() {
        let mut rng = TestRng::for_case("vec", 0);
        let exact = prop::collection::vec(any::<u64>(), 5usize);
        assert_eq!(exact.sample(&mut rng).len(), 5);
        let ranged = prop::collection::vec(any::<u8>(), 1..4);
        for _ in 0..50 {
            let len = ranged.sample(&mut rng).len();
            assert!((1..4).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_runs_and_asserts(x in 0u32..100, flip in prop::bool::ANY) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip, "flip {} must equal itself", flip);
        }
    }
}
